#include "mc/evaluator.h"

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_set>

#include "util/parallel.h"

namespace fav::mc {

using rtl::Machine;
using rtl::RegisterMap;

EvalScratch::EvalScratch(const SsfEvaluator& evaluator)
    : machine_(evaluator.golden().program()),
      gate_(evaluator.soc(), evaluator.golden().program()) {}

SsfEvaluator::SsfEvaluator(
    const soc::SocNetlist& soc, const layout::Placement& placement,
    const faultsim::InjectionSimulator& injector,
    const soc::SecurityBenchmark& bench, const rtl::GoldenRun& golden,
    const precharac::RegisterCharacterization* characterization,
    const EvaluatorConfig& config)
    : soc_(&soc),
      placement_(&placement),
      injector_(&injector),
      bench_(&bench),
      golden_(&golden),
      charac_(characterization),
      config_(config),
      analytical_(bench, golden) {
  target_cycle_ = analytical_.target_cycle();
  FAV_CHECK(config.trace_stride > 0);
}

bool SsfEvaluator::decide_outcome(rtl::Machine& machine,
                                  const std::vector<int>& flips,
                                  std::uint64_t first_faulty_cycle,
                                  OutcomePath* path) const {
  if (flips.empty()) {
    if (path != nullptr) *path = OutcomePath::kMasked;
    return false;
  }
  if (config_.use_analytical && charac_ != nullptr) {
    bool all_memory_type = true;
    for (const int bit : flips) {
      if (!charac_->is_memory_type(bit)) {
        all_memory_type = false;
        break;
      }
    }
    if (all_memory_type) {
      const auto verdict =
          analytical_.evaluate(machine.state(), first_faulty_cycle);
      if (verdict.has_value()) {
        if (path != nullptr) *path = OutcomePath::kAnalytical;
        return *verdict;
      }
    }
  }
  if (path != nullptr) *path = OutcomePath::kRtl;
  while (!machine.halted() && machine.cycle() < bench_->max_cycles) {
    machine.step();
  }
  return bench_->attack_succeeded(machine.state(), machine.ram());
}

bool SsfEvaluator::outcome_for_flips(std::uint64_t te,
                                     const std::vector<int>& flips,
                                     OutcomePath* path) const {
  const RegisterMap& map = Machine::reg_map();
  if (flips.empty()) {
    if (path != nullptr) *path = OutcomePath::kMasked;
    return false;
  }
  // Execute the injection cycle at RTL level, then overlay the latched
  // errors: they take effect from cycle te+1 (Fig. 5 step 5).
  Machine machine = golden_->restore(te);
  machine.step();
  for (const int bit : flips) map.flip_bit(machine.mutable_state(), bit);
  return decide_outcome(machine, flips, te + 1, path);
}

SampleRecord SsfEvaluator::evaluate_sample(
    const faultsim::FaultSample& sample) const {
  EvalScratch scratch(*this);
  return evaluate_sample(sample, scratch);
}

SampleRecord SsfEvaluator::evaluate_sample(const faultsim::FaultSample& sample,
                                           EvalScratch& scratch) const {
  SampleRecord rec;
  rec.sample = sample;
  FAV_CHECK_MSG(sample.t >= 0, "negative timing distance not supported");
  if (static_cast<std::uint64_t>(sample.t) > target_cycle_) {
    // Injection before the program starts: nothing to strike.
    rec.te = 0;
    rec.path = OutcomePath::kMasked;
    return rec;
  }
  rec.te = target_cycle_ - static_cast<std::uint64_t>(sample.t);

  // Gate-level injection cycle(s). Multi-cycle impact (sample.impact_cycles
  // > 1) strikes the same spot on consecutive cycles: each cycle is settled
  // on the *already-corrupted* state, its latched errors overlaid, and the
  // machine advanced — the paper's "multi-cycle impact" extension.
  FAV_CHECK_MSG(sample.impact_cycles >= 1, "impact_cycles must be >= 1");
  placement_->nodes_within(sample.center, sample.radius, scratch.struck_);
  const double strike_time =
      sample.strike_frac * injector_->timing().clock_period();
  const RegisterMap& map = Machine::reg_map();

  // The scratch machines are fully re-loaded here: restore_into rewrites the
  // RTL state/RAM/cycle, and load_state + settle_inputs rewrite every
  // register, input, and combinational value of the gate-level simulator —
  // no state survives from the previous sample.
  Machine& machine = scratch.machine_;
  golden_->restore_into(machine, rec.te);
  soc::GateLevelMachine& gate = scratch.gate_;
  std::set<int> flipped;
  for (int j = 0; j < sample.impact_cycles && !machine.halted(); ++j) {
    gate.load_state(machine.state());
    gate.mutable_ram() = machine.ram();
    gate.settle_inputs();
    const auto inj = injector_->inject(gate.sim(), scratch.struck_, strike_time);
    machine.step();
    for (const netlist::NodeId dff : inj.flipped_dffs) {
      const int bit = soc_->flat_bit_for_dff(dff);
      FAV_CHECK(bit >= 0);
      map.flip_bit(machine.mutable_state(), bit);
      flipped.insert(bit);
    }
  }
  rec.flipped_bits.assign(flipped.begin(), flipped.end());

  // `machine` is already positioned just past the last injection cycle with
  // every latched error overlaid; for impact_cycles == 1 this is exactly the
  // state outcome_for_flips would reconstruct.
  rec.success = decide_outcome(
      machine, rec.flipped_bits,
      rec.te + static_cast<std::uint64_t>(sample.impact_cycles), &rec.path);
  rec.contribution = rec.success ? sample.weight : 0.0;
  return rec;
}

SsfResult SsfEvaluator::reduce(std::vector<SampleRecord>&& records) const {
  const RegisterMap& map = Machine::reg_map();
  SsfResult result;
  for (std::size_t i = 0; i < records.size(); ++i) {
    SampleRecord& rec = records[i];
    result.stats.add(rec.contribution);
    switch (rec.path) {
      case OutcomePath::kMasked: ++result.masked; break;
      case OutcomePath::kAnalytical: ++result.analytical; break;
      case OutcomePath::kRtl: ++result.rtl; break;
    }
    if (rec.success) {
      ++result.successes;
      std::unordered_set<int> fields;
      for (const int bit : rec.flipped_bits) {
        fields.insert(map.locate(bit).first);
      }
      if (!fields.empty()) {
        const double share =
            rec.contribution / static_cast<double>(fields.size());
        for (const int f : fields) result.field_contribution[f] += share;
      }
      if (!rec.flipped_bits.empty()) {
        const double share =
            rec.contribution / static_cast<double>(rec.flipped_bits.size());
        for (const int bit : rec.flipped_bits) {
          result.bit_contribution[bit] += share;
        }
      }
    }
    if ((i + 1) % config_.trace_stride == 0) {
      result.trace.push_back(result.stats.mean());
    }
    if (config_.keep_records) result.records.push_back(std::move(rec));
  }
  return result;
}

SsfResult SsfEvaluator::run(Sampler& sampler, Rng& rng, std::size_t n) const {
  // (a) Pre-draw the whole batch sequentially. Sampler and Rng are stateful
  // and not thread-safe; drawing on the calling thread keeps the random
  // stream bitwise-identical to the sequential engine for every thread
  // count (evaluation itself consumes no randomness).
  std::vector<faultsim::FaultSample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) samples.push_back(sampler.draw(rng));

  // (b) Evaluate each sample into its own slot; workers reuse per-thread
  // scratch machines. Block scheduling is dynamic (sample cost varies by
  // outcome path), which is safe because slot writes, not schedule order,
  // carry the results.
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(resolve_thread_count(config_.threads),
                                        std::max<std::size_t>(n, 1)));
  std::vector<SampleRecord> records(n);
  if (workers <= 1) {
    EvalScratch scratch(*this);
    for (std::size_t i = 0; i < n; ++i) {
      records[i] = evaluate_sample(samples[i], scratch);
    }
  } else {
    // Materialize the netlist's lazily-derived data (topological order,
    // levels, fanouts) before the workers share it read-only.
    soc_->netlist().levels();
    std::vector<std::unique_ptr<EvalScratch>> scratch;
    scratch.reserve(workers);
    for (std::size_t w = 0; w < workers; ++w) {
      scratch.push_back(std::make_unique<EvalScratch>(*this));
    }
    parallel_for(n, workers, /*grain=*/8,
                 [&](std::size_t worker, std::size_t lo, std::size_t hi) {
                   for (std::size_t i = lo; i < hi; ++i) {
                     records[i] = evaluate_sample(samples[i], *scratch[worker]);
                   }
                 });
  }

  // (c) Reduce in sample-index order — the exact accumulation a sequential
  // loop would perform, so the estimate is independent of the schedule.
  return reduce(std::move(records));
}

}  // namespace fav::mc
