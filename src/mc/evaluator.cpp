#include "mc/evaluator.h"

#include <algorithm>
#include <memory>
#include <set>
#include <unordered_set>

#include "mc/journal.h"
#include "util/parallel.h"

namespace fav::mc {

using rtl::Machine;
using rtl::RegisterMap;

const char* outcome_path_name(OutcomePath path) {
  switch (path) {
    case OutcomePath::kMasked: return "masked";
    case OutcomePath::kAnalytical: return "analytical";
    case OutcomePath::kRtl: return "rtl";
    case OutcomePath::kFailed: return "failed";
  }
  return "unknown";
}

namespace {

/// Per-outcome-path latency timer name ("eval.sample.<path>_ns").
std::string path_timer_name(OutcomePath path) {
  return std::string("eval.sample.") + outcome_path_name(path) + "_ns";
}

}  // namespace

EvalBudget::EvalBudget(std::uint64_t cycle_budget, std::uint64_t deadline_ms)
    : cycles_left_(cycle_budget),
      limit_cycles_(cycle_budget > 0),
      limit_time_(deadline_ms > 0) {
  if (limit_time_) {
    deadline_ = std::chrono::steady_clock::now() +
                std::chrono::milliseconds(deadline_ms);
  }
}

void EvalBudget::charge_cycles(std::uint64_t cycles) {
  if (limit_cycles_) {
    if (cycles > cycles_left_) {
      cycles_left_ = 0;
      throw StatusError(ErrorCode::kCycleBudgetExceeded,
                        "per-sample RTL cycle budget exhausted");
    }
    cycles_left_ -= cycles;
  }
  // The clock read is amortized: one probe every 64 charges.
  if (limit_time_ && (++ticks_ & 63u) == 0 &&
      std::chrono::steady_clock::now() > deadline_) {
    throw StatusError(ErrorCode::kDeadlineExceeded,
                      "per-sample wall-clock deadline exhausted");
  }
}

EvalScratch::EvalScratch(const SsfEvaluator& evaluator)
    : machine_(evaluator.golden().program()),
      gate_(evaluator.soc(), evaluator.golden().program()),
      words_(evaluator.soc().netlist()),
      resume_(evaluator.golden().program()) {}

SsfEvaluator::SsfEvaluator(
    const soc::SocNetlist& soc, const faultsim::AttackTechnique& technique,
    const soc::SecurityBenchmark& bench, const rtl::GoldenRun& golden,
    const precharac::RegisterCharacterization* characterization,
    const EvaluatorConfig& config)
    : soc_(&soc),
      technique_(&technique),
      bench_(&bench),
      golden_(&golden),
      charac_(characterization),
      config_(config),
      analytical_(bench, golden) {
  target_cycle_ = analytical_.target_cycle();
  FAV_ENSURE(config.trace_stride > 0);
}

SsfEvaluator::SsfEvaluator(
    const soc::SocNetlist& soc, const layout::Placement& placement,
    const faultsim::InjectionSimulator& injector,
    const soc::SecurityBenchmark& bench, const rtl::GoldenRun& golden,
    const precharac::RegisterCharacterization* characterization,
    const EvaluatorConfig& config)
    : soc_(&soc),
      owned_technique_(
          std::make_unique<faultsim::RadiationTechnique>(placement, injector)),
      technique_(owned_technique_.get()),
      bench_(&bench),
      golden_(&golden),
      charac_(characterization),
      config_(config),
      analytical_(bench, golden) {
  target_cycle_ = analytical_.target_cycle();
  FAV_ENSURE(config.trace_stride > 0);
}

bool SsfEvaluator::decide_outcome(rtl::Machine& machine,
                                  const std::vector<int>& flips,
                                  std::uint64_t first_faulty_cycle,
                                  OutcomePath* path, EvalBudget& budget,
                                  MetricsSink* sink) const {
  if (flips.empty()) {
    if (path != nullptr) *path = OutcomePath::kMasked;
    return false;
  }
  if (config_.use_analytical && charac_ != nullptr) {
    bool all_memory_type = true;
    for (const int bit : flips) {
      if (!charac_->is_memory_type(bit)) {
        all_memory_type = false;
        break;
      }
    }
    if (all_memory_type) {
      ScopeTimer timer(sink, "eval.analytical_ns");
      const auto verdict =
          analytical_.evaluate(machine.state(), first_faulty_cycle);
      if (verdict.has_value()) {
        if (path != nullptr) *path = OutcomePath::kAnalytical;
        return *verdict;
      }
    }
  }
  if (path != nullptr) *path = OutcomePath::kRtl;
  ScopeTimer timer(sink, "eval.rtl_resume_ns");
  const std::uint64_t resume_from = machine.cycle();
  while (!machine.halted() && machine.cycle() < bench_->max_cycles) {
    budget.charge_cycles(1);
    machine.step();
  }
  if (sink != nullptr) {
    sink->add_counter("rtl.resume_cycles", machine.cycle() - resume_from);
  }
  return bench_->attack_succeeded(machine.state(), machine.ram());
}

bool SsfEvaluator::outcome_for_flips(std::uint64_t te,
                                     const std::vector<int>& flips,
                                     OutcomePath* path) const {
  const RegisterMap& map = Machine::reg_map();
  if (flips.empty()) {
    if (path != nullptr) *path = OutcomePath::kMasked;
    return false;
  }
  // Execute the injection cycle at RTL level, then overlay the latched
  // errors: they take effect from cycle te+1 (Fig. 5 step 5).
  EvalBudget budget(config_.cycle_budget, config_.sample_deadline_ms);
  std::uint64_t warmup = 0;
  Machine machine = golden_->restore(te, &warmup);
  budget.charge_cycles(warmup + 1);
  machine.step();
  for (const int bit : flips) map.flip_bit(machine.mutable_state(), bit);
  return decide_outcome(machine, flips, te + 1, path, budget);
}

SampleRecord SsfEvaluator::evaluate_sample(
    const faultsim::FaultSample& sample) const {
  EvalScratch scratch(*this);
  return evaluate_sample(sample, scratch);
}

SampleRecord SsfEvaluator::evaluate_sample(const faultsim::FaultSample& sample,
                                           EvalScratch& scratch,
                                           MetricsSink* sink) const {
  SampleRecord rec;
  rec.sample = sample;
  technique_->check_sample(sample);
  if (static_cast<std::uint64_t>(sample.t) > target_cycle_) {
    // Injection before the program starts: nothing to strike.
    rec.te = 0;
    rec.path = OutcomePath::kMasked;
    return rec;
  }
  rec.te = target_cycle_ - static_cast<std::uint64_t>(sample.t);

  // Gate-level injection cycle(s). Multi-cycle impact (sample.impact_cycles
  // > 1) applies the same technique parameters on consecutive cycles: each
  // cycle is settled on the *already-corrupted* state, its latched errors
  // overlaid, and the machine advanced — the paper's "multi-cycle impact"
  // extension.
  EvalBudget budget(config_.cycle_budget, config_.sample_deadline_ms);
  const RegisterMap& map = Machine::reg_map();

  // The scratch machines are fully re-loaded here: restore_into rewrites the
  // RTL state/RAM/cycle, and load_state + settle_inputs rewrite every
  // register, input, and combinational value of the gate-level simulator —
  // no state survives from the previous sample.
  Machine& machine = scratch.machine_;
  std::uint64_t warmup = 0;
  {
    ScopeTimer timer(sink, "eval.restore_ns");
    golden_->restore_into(machine, rec.te, &warmup);
  }
  if (sink != nullptr) {
    sink->add_counter("rtl.warmup_cycles", warmup);
    sink->add_counter("rtl.restore_bytes", golden_->restore_byte_size());
  }
  budget.charge_cycles(warmup);
  soc::GateLevelMachine& gate = scratch.gate_;
  std::set<int> flipped;
  {
    ScopeTimer timer(sink, "eval.gate_inject_ns");
    const std::uint64_t settles_before = gate.total_settles();
    std::uint64_t injection_cycles = 0;
    for (int j = 0; j < sample.impact_cycles && !machine.halted(); ++j) {
      budget.charge_cycles(1);
      ++injection_cycles;
      gate.load_state(machine.state());
      gate.mutable_ram() = machine.ram();
      gate.settle_inputs();
      technique_->flip_set(gate.sim(), scratch.technique_, sample,
                           scratch.flipped_dffs_);
      machine.step();
      for (const netlist::NodeId dff : scratch.flipped_dffs_) {
        const int bit = soc_->flat_bit_for_dff(dff);
        FAV_CHECK(bit >= 0);
        map.flip_bit(machine.mutable_state(), bit);
        flipped.insert(bit);
      }
    }
    if (sink != nullptr) {
      sink->add_counter("gate.injection_cycles", injection_cycles);
      sink->add_counter("gate.settle_passes",
                        gate.total_settles() - settles_before);
    }
  }
  rec.flipped_bits.assign(flipped.begin(), flipped.end());

  // `machine` is already positioned just past the last injection cycle with
  // every latched error overlaid; for impact_cycles == 1 this is exactly the
  // state outcome_for_flips would reconstruct.
  rec.success = decide_outcome(
      machine, rec.flipped_bits,
      rec.te + static_cast<std::uint64_t>(sample.impact_cycles), &rec.path,
      budget, sink);
  rec.contribution = rec.success ? sample.weight : 0.0;
  return rec;
}

SampleRecord SsfEvaluator::evaluate_sample_isolated(
    const faultsim::FaultSample& sample,
    std::unique_ptr<EvalScratch>& scratch, MetricsSink* sink) const {
  auto classify = [](const std::exception& e) {
    if (const auto* se = dynamic_cast<const StatusError*>(&e)) {
      return se->code();
    }
    return ErrorCode::kSampleEvalFailed;
  };
  ErrorCode code;
  std::string reason;
  try {
    return evaluate_sample(sample, *scratch, sink);
  } catch (const std::exception& e) {
    code = classify(e);
    reason = e.what();
  }
  // A cycle-budget overrun is deterministic — the retry would burn the same
  // cycles and fail identically, so only other failures are re-attempted,
  // on a *fresh* scratch in case the failed attempt left the machines in an
  // inconsistent state.
  bool retried = false;
  if (config_.retry_failed && code != ErrorCode::kCycleBudgetExceeded) {
    retried = true;
    {
      ScopeTimer timer(sink, "eval.scratch_rebuild_ns");
      scratch = std::make_unique<EvalScratch>(*this);
    }
    try {
      SampleRecord rec = evaluate_sample(sample, *scratch, sink);
      rec.retried = true;
      return rec;
    } catch (const std::exception& e) {
      code = classify(e);
      reason = e.what();
    }
  }
  SampleRecord rec;
  rec.sample = sample;
  rec.path = OutcomePath::kFailed;
  rec.fail_code = code;
  rec.fail_reason = reason;
  rec.retried = retried;
  return rec;
}

void SsfEvaluator::fold_record(ReduceState& state, SampleRecord&& rec) const {
  const RegisterMap& map = Machine::reg_map();
  SsfResult& result = state.result;
  result.total_weight += rec.sample.weight;
  if (rec.retried) ++result.retried;
  if (rec.path == OutcomePath::kFailed) {
    // Failed samples carry no estimate: the mean stays well-defined over
    // completed samples, and the failed weight bounds what was lost.
    ++result.failed;
    result.failed_weight += rec.sample.weight;
    ++result.failure_counts[rec.fail_code];
  } else {
    result.completed_weight += rec.sample.weight;
    result.completed_weight_sq += rec.sample.weight * rec.sample.weight;
    result.stats.add(rec.contribution);
    switch (rec.path) {
      case OutcomePath::kMasked: ++result.masked; break;
      case OutcomePath::kAnalytical: ++result.analytical; break;
      case OutcomePath::kRtl: ++result.rtl; break;
      case OutcomePath::kFailed: break;  // unreachable
    }
  }
  if (rec.success) {
    ++result.successes;
    std::unordered_set<int> fields;
    for (const int bit : rec.flipped_bits) {
      fields.insert(map.locate(bit).first);
    }
    if (!fields.empty()) {
      const double share =
          rec.contribution / static_cast<double>(fields.size());
      for (const int f : fields) result.field_contribution[f] += share;
    }
    if (!rec.flipped_bits.empty()) {
      const double share =
          rec.contribution / static_cast<double>(rec.flipped_bits.size());
      for (const int bit : rec.flipped_bits) {
        result.bit_contribution[bit] += share;
      }
    }
  }
  if ((state.index + 1) % config_.trace_stride == 0) {
    result.trace.push_back(result.stats.mean());
  }
  if (config_.keep_records) {
    // The capacity cap keeps the first N records in sample-index order:
    // a deterministic prefix, not a sampling of the run.
    if (config_.record_capacity == 0 ||
        result.records.size() < config_.record_capacity) {
      result.records.push_back(std::move(rec));
    } else {
      ++state.records_dropped;
    }
  }
  ++state.index;
}

SsfResult SsfEvaluator::finish_reduce(ReduceState&& state) const {
  SsfResult result = std::move(state.result);
  result.evaluated = state.index;
  // Sample-derived aggregates land in the caller's sink here, inside the
  // sample-index-ordered reduction, so they are deterministic at every
  // thread count (unlike the wall-clock timers merged from worker sinks).
  // reduce_metrics is off inside supervised workers, whose records are
  // re-reduced (and re-counted) by the supervisor.
  if (config_.metrics != nullptr && config_.reduce_metrics) {
    MetricsSink& m = *config_.metrics;
    m.add_counter("eval.samples", state.index);
    m.add_counter("eval.path.masked", result.masked);
    m.add_counter("eval.path.analytical", result.analytical);
    m.add_counter("eval.path.rtl", result.rtl);
    m.add_counter("eval.path.failed", result.failed);
    m.add_counter("eval.retried", result.retried);
    m.add_counter("eval.successes", result.successes);
    m.add_counter("eval.records_dropped", state.records_dropped);
    m.set_gauge("eval.ess", result.effective_sample_size());
    m.set_gauge("eval.ssf", result.ssf());
    m.set_gauge("eval.failed_weight_fraction",
                result.failed_weight_fraction());
  }
  return result;
}

SsfResult SsfEvaluator::reduce(std::vector<SampleRecord>&& records) const {
  ReduceState state;
  for (SampleRecord& rec : records) fold_record(state, std::move(rec));
  return finish_reduce(std::move(state));
}

std::vector<faultsim::FaultSample> SsfEvaluator::draw_batch(
    Sampler& sampler, Rng& rng, std::size_t n) const {
  // Pre-draw the whole batch sequentially. Sampler and Rng are stateful and
  // not thread-safe; drawing on the calling thread keeps the random stream
  // bitwise-identical to the sequential engine for every thread count
  // (evaluation itself consumes no randomness).
  std::vector<faultsim::FaultSample> samples;
  samples.reserve(n);
  for (std::size_t i = 0; i < n; ++i) {
    try {
      samples.push_back(sampler.draw(rng));
    } catch (const std::exception& e) {
      throw StatusError(ErrorCode::kSamplerFailed,
                        "sampler '" + sampler.name() + "' failed at draw " +
                            std::to_string(i) + ": " + e.what());
    }
  }
  return samples;
}

std::vector<std::unique_ptr<EvalScratch>> SsfEvaluator::make_scratch_pool(
    std::size_t n) const {
  const std::size_t workers =
      std::max<std::size_t>(1, std::min(resolve_thread_count(config_.threads),
                                        std::max<std::size_t>(n, 1)));
  if (workers > 1) {
    // Materialize the netlist's lazily-derived data (topological order,
    // levels, fanouts) before the workers share it read-only.
    soc_->netlist().levels();
  }
  std::vector<std::unique_ptr<EvalScratch>> scratch;
  scratch.reserve(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    scratch.push_back(std::make_unique<EvalScratch>(*this));
  }
  return scratch;
}

SsfEvaluator::WorkerObservers SsfEvaluator::make_observers(
    std::size_t workers) const {
  WorkerObservers obs;
  if (config_.metrics != nullptr) obs.sinks.resize(workers);
  if (config_.trace != nullptr) obs.traces.resize(workers);
  return obs;
}

void SsfEvaluator::merge_observers(WorkerObservers&& observers) const {
  // Worker-index order: the merged counter totals are schedule-independent
  // anyway (each sample contributes the same increments wherever it ran),
  // but a fixed fold order keeps the aggregation itself deterministic.
  if (config_.metrics != nullptr) {
    for (const MetricsSink& sink : observers.sinks) {
      config_.metrics->merge(sink);
    }
  }
  if (config_.trace != nullptr) {
    for (TraceBuffer& buf : observers.traces) {
      config_.trace->merge(std::move(buf));
    }
  }
}

void SsfEvaluator::evaluate_range(
    const std::vector<faultsim::FaultSample>& samples,
    std::vector<SampleRecord>& records, std::size_t lo, std::size_t hi,
    std::vector<std::unique_ptr<EvalScratch>>& scratch,
    WorkerObservers* observers) const {
  // Evaluate each sample into its own slot; workers reuse per-thread scratch
  // machines. Block scheduling is dynamic (sample cost varies by outcome
  // path), which is safe because slot writes, not schedule order, carry the
  // results. Instrumentation writes only into the worker's own sink/trace
  // slot (merged later), so observing a run cannot perturb it.
  const bool timing = observers != nullptr && (!observers->sinks.empty() ||
                                               !observers->traces.empty());
  auto eval_one = [&](std::size_t worker, std::size_t i) {
    MetricsSink* sink =
        observers != nullptr && !observers->sinks.empty()
            ? &observers->sinks[worker]
            : nullptr;
    const std::uint64_t t0 = timing ? monotonic_ns() : 0;
    records[i] = evaluate_sample_isolated(samples[i], scratch[worker], sink);
    if (timing) {
      const std::uint64_t dur = monotonic_ns() - t0;
      if (sink != nullptr) {
        sink->add_timer_ns(path_timer_name(records[i].path), dur);
      }
      if (!observers->traces.empty()) {
        observers->traces[worker].record(
            outcome_path_name(records[i].path), "sample", t0, dur,
            static_cast<std::uint32_t>(worker), i);
      }
    }
    if (config_.progress != nullptr) {
      const bool failed = records[i].path == OutcomePath::kFailed;
      config_.progress->record(failed ? 0.0 : records[i].contribution,
                               records[i].sample.weight, failed);
    }
    if (config_.on_sample) config_.on_sample(records[i], i);
  };

  // Word-parallel batching: group samples that share an injection cycle te
  // so one restore + settle + bit-parallel sweep serves the whole group.
  // Eligibility mirrors the scalar flow exactly — a sample whose parameters
  // fail check_sample, that lands before the program starts, or that needs
  // multi-cycle impact keeps its scalar evaluation (a singleton unit).
  // Grouping is computed sequentially from the sample order, so the unit
  // list — and with it every record — is identical at every thread count.
  const std::size_t lane_cap = std::min<std::size_t>(config_.batch_lanes, 64);
  if (lane_cap >= 2 && technique_->supports_batch() && hi - lo >= 2) {
    std::vector<std::vector<std::size_t>> units;
    std::unordered_map<std::uint64_t, std::size_t> open;  // te -> open unit
    for (std::size_t i = lo; i < hi; ++i) {
      const faultsim::FaultSample& s = samples[i];
      bool eligible = s.impact_cycles == 1;
      if (eligible) {
        try {
          technique_->check_sample(s);
        } catch (const std::exception&) {
          eligible = false;  // the scalar path records the failure
        }
      }
      if (eligible && static_cast<std::uint64_t>(s.t) > target_cycle_) {
        eligible = false;  // early-masked: nothing to strike, stays scalar
      }
      if (!eligible) {
        units.push_back({i});
        continue;
      }
      const std::uint64_t te =
          target_cycle_ - static_cast<std::uint64_t>(s.t);
      const auto it = open.find(te);
      if (it != open.end() && units[it->second].size() < lane_cap) {
        units[it->second].push_back(i);
      } else {
        open[te] = units.size();  // full units are sealed and replaced
        units.push_back({i});
      }
    }
    auto eval_unit = [&](std::size_t worker, std::size_t u) {
      const std::vector<std::size_t>& unit = units[u];
      if (unit.size() == 1) {
        eval_one(worker, unit[0]);
        return;
      }
      MetricsSink* sink =
          observers != nullptr && !observers->sinks.empty()
              ? &observers->sinks[worker]
              : nullptr;
      TraceBuffer* trace_buf =
          observers != nullptr && !observers->traces.empty()
              ? &observers->traces[worker]
              : nullptr;
      evaluate_group(samples, records, unit, scratch[worker], sink, trace_buf,
                     static_cast<std::uint32_t>(worker), eval_one);
    };
    if (scratch.size() <= 1) {
      for (std::size_t u = 0; u < units.size(); ++u) eval_unit(0, u);
      return;
    }
    parallel_for(units.size(), scratch.size(), /*grain=*/1,
                 [&](std::size_t worker, std::size_t b, std::size_t e) {
                   for (std::size_t u = b; u < e; ++u) eval_unit(worker, u);
                 });
    return;
  }

  if (scratch.size() <= 1) {
    for (std::size_t i = lo; i < hi; ++i) eval_one(0, i);
    return;
  }
  parallel_for(hi - lo, scratch.size(), /*grain=*/8,
               [&](std::size_t worker, std::size_t b, std::size_t e) {
                 for (std::size_t i = lo + b; i < lo + e; ++i) {
                   eval_one(worker, i);
                 }
               });
}

void SsfEvaluator::evaluate_group(
    const std::vector<faultsim::FaultSample>& samples,
    std::vector<SampleRecord>& records, const std::vector<std::size_t>& unit,
    std::unique_ptr<EvalScratch>& scratch, MetricsSink* sink,
    TraceBuffer* trace_buf, std::uint32_t worker,
    const std::function<void(std::size_t, std::size_t)>& scalar_eval) const {
  const bool timing = sink != nullptr || trace_buf != nullptr;
  const std::uint64_t t0 = timing ? monotonic_ns() : 0;
  const std::uint64_t te =
      target_cycle_ - static_cast<std::uint64_t>(samples[unit[0]].t);

  // Shared phase: one restore, one gate-level settle, one bit-parallel
  // flip-set sweep for the whole group. No budget is charged here — the
  // per-lane finalization below replays the scalar charge sequence exactly,
  // so budget overruns fail lane-by-lane with scalar-identical records.
  EvalScratch& sc = *scratch;
  std::uint64_t warmup = 0;
  bool halted_at_te = false;
  bool shared_ok = true;
  try {
    {
      ScopeTimer timer(sink, "eval.restore_ns");
      golden_->restore_into(sc.machine_, te, &warmup);
    }
    if (sink != nullptr) {
      sink->add_counter("rtl.warmup_cycles", warmup);
      sink->add_counter("rtl.restore_bytes", golden_->restore_byte_size());
    }
    halted_at_te = sc.machine_.halted();
    if (!halted_at_te) {
      ScopeTimer timer(sink, "eval.gate_inject_ns");
      const std::uint64_t settles_before = sc.gate_.total_settles();
      sc.gate_.load_state(sc.machine_.state());
      sc.gate_.mutable_ram() = sc.machine_.ram();
      sc.gate_.settle_inputs();
      sc.gate_.broadcast_settled(sc.words_);
      sc.lane_samples_.clear();
      for (const std::size_t i : unit) sc.lane_samples_.push_back(samples[i]);
      technique_->flip_set_batch(sc.words_, sc.technique_, sc.lane_samples_,
                                 sc.lane_flips_);
      sc.machine_.step();
      if (sink != nullptr) {
        sink->add_counter("gate.injection_cycles", 1);
        sink->add_counter("gate.settle_passes",
                          sc.gate_.total_settles() - settles_before);
      }
    } else {
      // The loop body never runs in the scalar flow either: every lane is
      // masked with an empty flip set.
      sc.lane_flips_.assign(unit.size(), std::vector<netlist::NodeId>{});
    }
  } catch (const std::exception&) {
    shared_ok = false;
  }
  if (!shared_ok) {
    // The shared work failed deterministically (restore/settle/flip-set);
    // the scalar replay reproduces the identical failure — and its retry /
    // kFailed record — per sample.
    for (const std::size_t i : unit) scalar_eval(worker, i);
    return;
  }
  if (sink != nullptr) {
    sink->add_counter("eval.batch_groups", 1);
    sink->add_counter("eval.batch_lanes", unit.size());
    sink->add_counter("eval.batch_restore_saved", unit.size() - 1);
  }

  const RegisterMap& map = Machine::reg_map();
  for (std::size_t l = 0; l < unit.size(); ++l) {
    const std::size_t i = unit[l];
    const faultsim::FaultSample& s = samples[i];
    SampleRecord rec;
    bool done = false;
    try {
      rec.sample = s;
      rec.te = te;
      // Replay the scalar budget charges: warm-up after restore, then one
      // cycle for the injection cycle (skipped when the machine was already
      // halted, exactly as the scalar loop guard skips it).
      EvalBudget budget(config_.cycle_budget, config_.sample_deadline_ms);
      budget.charge_cycles(warmup);
      if (!halted_at_te) budget.charge_cycles(1);
      std::set<int> flipped;
      for (const netlist::NodeId dff : sc.lane_flips_[l]) {
        const int bit = soc_->flat_bit_for_dff(dff);
        FAV_CHECK(bit >= 0);
        flipped.insert(bit);
      }
      rec.flipped_bits.assign(flipped.begin(), flipped.end());
      if (rec.flipped_bits.empty()) {
        rec.path = OutcomePath::kMasked;
        rec.success = false;
      } else {
        // Only diverging lanes pay for an RTL resume: copy the shared
        // post-injection state, overlay this lane's errors, and decide.
        sc.resume_ = sc.machine_;
        for (const int bit : rec.flipped_bits) {
          map.flip_bit(sc.resume_.mutable_state(), bit);
        }
        rec.success = decide_outcome(sc.resume_, rec.flipped_bits, te + 1,
                                     &rec.path, budget, sink);
      }
      rec.contribution = rec.success ? s.weight : 0.0;
      done = true;
    } catch (const StatusError& e) {
      if (e.code() == ErrorCode::kCycleBudgetExceeded) {
        // Deterministic overrun: the scalar path records it without retry.
        rec = SampleRecord{};
        rec.sample = s;
        rec.path = OutcomePath::kFailed;
        rec.fail_code = e.code();
        rec.fail_reason = e.what();
        done = true;
      }
    } catch (const std::exception&) {
      // Fall through to the scalar replay below.
    }
    if (!done) {
      // Retryable failure (deadline, check failure, ...): the scalar replay
      // owns the full isolation protocol, including the fresh-scratch retry.
      scalar_eval(worker, i);
      continue;
    }
    records[i] = std::move(rec);
    if (timing) {
      const std::uint64_t dur = monotonic_ns() - t0;
      if (sink != nullptr) {
        sink->add_timer_ns(path_timer_name(records[i].path), dur);
      }
      if (trace_buf != nullptr) {
        trace_buf->record(outcome_path_name(records[i].path), "sample", t0,
                          dur, worker, i);
      }
    }
    if (config_.progress != nullptr) {
      const bool failed = records[i].path == OutcomePath::kFailed;
      config_.progress->record(failed ? 0.0 : records[i].contribution,
                               records[i].sample.weight, failed);
    }
    if (config_.on_sample) config_.on_sample(records[i], i);
  }
}

SsfResult SsfEvaluator::run_batch(
    std::vector<faultsim::FaultSample> samples) const {
  // The sample list is the whole contract: any caller that can enumerate or
  // draw FaultSamples (MC samplers, exact enumeration drivers, replay tools)
  // inherits the full pipeline — worker pool, isolation, observability and
  // the deterministic sample-index-ordered reduction.
  const std::size_t n = samples.size();
  std::vector<SampleRecord> records(n);
  std::vector<std::unique_ptr<EvalScratch>> scratch;
  {
    ScopeTimer timer(config_.metrics, "run.scratch_setup_ns");
    scratch = make_scratch_pool(n);
  }
  WorkerObservers observers = make_observers(scratch.size());
  // With a stop flag the batch is evaluated in chunks so a SIGINT lands
  // within one chunk of work; without one, a single range call avoids the
  // (small) per-chunk scheduling barrier.
  std::size_t done = n;
  if (config_.stop == nullptr) {
    evaluate_range(samples, records, 0, n, scratch, &observers);
  } else {
    constexpr std::size_t kStopChunk = 256;
    done = 0;
    while (done < n && !config_.stop->load(std::memory_order_relaxed)) {
      const std::size_t hi = std::min(done + kStopChunk, n);
      evaluate_range(samples, records, done, hi, scratch, &observers);
      done = hi;
    }
  }
  merge_observers(std::move(observers));
  // Reduce in sample-index order — the exact accumulation a sequential loop
  // would perform, so the estimate is independent of the schedule.
  ScopeTimer timer(config_.metrics, "run.reduce_ns");
  records.resize(done);
  SsfResult result = reduce(std::move(records));
  result.interrupted = done < n;
  return result;
}

SsfResult SsfEvaluator::run(Sampler& sampler, Rng& rng, std::size_t n) const {
  ScopeTimer run_timer(config_.metrics, "run.total_ns");
  std::vector<faultsim::FaultSample> samples;
  {
    ScopeTimer timer(config_.metrics, "run.draw_batch_ns");
    samples = draw_batch(sampler, rng, n);
  }
  return run_batch(std::move(samples));
}

Result<SsfResult> SsfEvaluator::run_journaled(
    Sampler& sampler, Rng& rng, std::size_t n,
    const JournalOptions& options) const {
  if (options.dir.empty()) {
    return Status(ErrorCode::kInvalidArgument, "journal directory is empty");
  }
  if (options.shard_size == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "journal shard_size must be > 0");
  }
  std::vector<faultsim::FaultSample> samples;
  try {
    samples = draw_batch(sampler, rng, n);
  } catch (const StatusError& e) {
    return e.status();
  }

  JournalMeta meta;
  meta.fingerprint = options.fingerprint;
  meta.total_samples = n;
  meta.context = options.context;

  std::vector<SampleRecord> records(n);
  std::size_t done = 0;  // records [0, done) restored from the journal
  std::uint64_t valid_bytes = 0;
  if (options.resume) {
    Result<JournalContents> loaded = read_journal(options.dir);
    if (!loaded.is_ok()) return loaded.status();
    JournalContents& j = loaded.value();
    valid_bytes = j.valid_bytes;
    if (j.meta.fingerprint != meta.fingerprint ||
        j.meta.total_samples != meta.total_samples) {
      return Status(ErrorCode::kJournalCorrupt,
                    "journal belongs to a different campaign (fingerprint or "
                    "sample count mismatch)");
    }
    done = std::min(j.records.size(), n);
    for (std::size_t i = 0; i < done; ++i) {
      // Cross-check the journaled sample against the freshly re-drawn one:
      // a mismatch means the sampler/seed/config changed under the journal.
      if (!sample_matches(j.records[i].sample, samples[i])) {
        return Status(ErrorCode::kJournalCorrupt,
                      "journaled sample " + std::to_string(i) +
                          " does not match the re-drawn sample stream");
      }
      records[i] = std::move(j.records[i]);
    }
  }

  JournalWriter writer;
  writer.set_metrics(config_.metrics);
  const Status open = options.resume && done > 0
                          ? writer.open_append(options.dir, valid_bytes)
                          : writer.open_fresh(options.dir, meta);
  if (!open.is_ok()) return open;
  if (config_.metrics != nullptr) {
    config_.metrics->add_counter("journal.resumed_records", done);
  }

  auto scratch = make_scratch_pool(n);
  WorkerObservers observers = make_observers(scratch.size());
  // The stop flag is polled at shard granularity: a shard either completes
  // and is committed to the journal, or was never started — so an
  // interrupted run leaves exactly the journal a crash would, and resume
  // continues from the first missing index either way.
  for (std::size_t lo = done; lo < n; lo += options.shard_size) {
    if (config_.stop != nullptr &&
        config_.stop->load(std::memory_order_relaxed)) {
      break;
    }
    const std::size_t hi = std::min(lo + options.shard_size, n);
    evaluate_range(samples, records, lo, hi, scratch, &observers);
    const Status appended = writer.append_shard(lo, &records[lo], hi - lo);
    if (!appended.is_ok()) {
      if (appended.code() == ErrorCode::kStorageFull) {
        // The disk filled (or failed) mid-campaign. Everything journaled so
        // far is durable, so stop gracefully with a partial, resumable
        // result instead of erroring out — exactly like a stop-flag
        // interruption. `done` excludes the shard whose append failed.
        if (config_.metrics != nullptr) {
          config_.metrics->add_counter("journal.storage_full_stops");
        }
        break;
      }
      return appended;
    }
    done = hi;
  }
  merge_observers(std::move(observers));
  records.resize(done);
  SsfResult result = reduce(std::move(records));
  result.interrupted = done < n;
  return result;
}

SsfResult SsfEvaluator::reduce_records(
    std::vector<SampleRecord> records) const {
  return reduce(std::move(records));
}

namespace {

// Effective sweep length: the bound space clipped by --space-limit.
std::size_t exhaustive_total(std::uint64_t space, std::uint64_t space_limit) {
  const std::uint64_t n = space_limit == 0 ? space
                                           : std::min(space, space_limit);
  return static_cast<std::size_t>(n);
}

}  // namespace

SsfResult SsfEvaluator::run_exhaustive(std::uint64_t space_limit) const {
  ScopeTimer run_timer(config_.metrics, "run.total_ns");
  const std::uint64_t space = technique_->space_size();
  if (space == 0) {
    throw StatusError(ErrorCode::kInvalidArgument,
                      std::string("technique '") + technique_->name() +
                          "' has no bound fault space (call bind_space "
                          "before run_exhaustive)");
  }
  const std::size_t n = exhaustive_total(space, space_limit);
  std::vector<std::unique_ptr<EvalScratch>> scratch;
  {
    ScopeTimer timer(config_.metrics, "run.scratch_setup_ns");
    scratch = make_scratch_pool(n);
  }
  WorkerObservers observers = make_observers(scratch.size());
  // Stream the enumeration in bounded chunks: memory stays O(kChunk) no
  // matter how large the grid is, and the chunk-local records are folded
  // into the running reduction in enumeration-index order — the exact
  // accumulation one reduce() over the materialized space would perform.
  // (Chunk boundaries can split a te-group across word-parallel batches,
  // which is harmless: batching is bitwise-identical to the scalar path.)
  constexpr std::size_t kChunk = 256;
  ReduceState state;
  std::vector<faultsim::FaultSample> chunk;
  std::vector<SampleRecord> records;
  std::size_t done = 0;
  while (done < n) {
    if (config_.stop != nullptr &&
        config_.stop->load(std::memory_order_relaxed)) {
      break;
    }
    const std::size_t hi = std::min(done + kChunk, n);
    technique_->enumerate(done, hi, chunk);
    records.clear();
    records.resize(hi - done);
    evaluate_range(chunk, records, 0, hi - done, scratch, &observers);
    for (SampleRecord& rec : records) fold_record(state, std::move(rec));
    done = hi;
  }
  merge_observers(std::move(observers));
  SsfResult result = finish_reduce(std::move(state));
  result.fault_space_size = space;
  result.interrupted = done < n;
  return result;
}

Result<SsfResult> SsfEvaluator::run_exhaustive_journaled(
    const JournalOptions& options, std::uint64_t space_limit) const {
  if (options.dir.empty()) {
    return Status(ErrorCode::kInvalidArgument, "journal directory is empty");
  }
  if (options.shard_size == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "journal shard_size must be > 0");
  }
  const std::uint64_t space = technique_->space_size();
  if (space == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  std::string("technique '") + technique_->name() +
                      "' has no bound fault space (call bind_space before "
                      "run_exhaustive_journaled)");
  }
  const std::size_t n = exhaustive_total(space, space_limit);

  JournalMeta meta;
  meta.fingerprint = options.fingerprint;
  meta.total_samples = n;
  meta.context = options.context;

  ReduceState state;
  std::vector<faultsim::FaultSample> chunk;
  std::size_t done = 0;  // records [0, done) restored from the journal
  std::uint64_t valid_bytes = 0;
  if (options.resume) {
    Result<JournalContents> loaded = read_journal(options.dir);
    if (!loaded.is_ok()) return loaded.status();
    JournalContents& j = loaded.value();
    valid_bytes = j.valid_bytes;
    if (j.meta.fingerprint != meta.fingerprint ||
        j.meta.total_samples != meta.total_samples) {
      return Status(ErrorCode::kJournalCorrupt,
                    "journal belongs to a different campaign (fingerprint or "
                    "sample count mismatch)");
    }
    done = std::min(j.records.size(), n);
    // Cross-check the journaled prefix against the re-enumerated stream —
    // the enumeration-index analogue of run_journaled's re-drawn-sample
    // check: a mismatch means the bound space (model grid, benchmark)
    // changed under the journal.
    for (std::size_t lo = 0; lo < done; lo += options.shard_size) {
      const std::size_t hi = std::min(lo + options.shard_size, done);
      technique_->enumerate(lo, hi, chunk);
      for (std::size_t i = lo; i < hi; ++i) {
        if (!sample_matches(j.records[i].sample, chunk[i - lo])) {
          return Status(ErrorCode::kJournalCorrupt,
                        "journaled sample " + std::to_string(i) +
                            " does not match the enumerated fault space");
        }
        fold_record(state, std::move(j.records[i]));
      }
    }
  }

  JournalWriter writer;
  writer.set_metrics(config_.metrics);
  const Status open = options.resume && done > 0
                          ? writer.open_append(options.dir, valid_bytes)
                          : writer.open_fresh(options.dir, meta);
  if (!open.is_ok()) return open;
  if (config_.metrics != nullptr) {
    config_.metrics->add_counter("journal.resumed_records", done);
  }

  auto scratch = make_scratch_pool(n);
  WorkerObservers observers = make_observers(scratch.size());
  std::vector<SampleRecord> records;
  // Shards are enumerated, evaluated, committed, then folded — so an
  // interrupted sweep leaves exactly the journal a crash would, and the
  // running reduction only ever covers committed shards.
  for (std::size_t lo = done; lo < n; lo += options.shard_size) {
    if (config_.stop != nullptr &&
        config_.stop->load(std::memory_order_relaxed)) {
      break;
    }
    const std::size_t hi = std::min(lo + options.shard_size, n);
    technique_->enumerate(lo, hi, chunk);
    records.clear();
    records.resize(hi - lo);
    evaluate_range(chunk, records, 0, hi - lo, scratch, &observers);
    const Status appended = writer.append_shard(lo, records.data(), hi - lo);
    if (!appended.is_ok()) {
      if (appended.code() == ErrorCode::kStorageFull) {
        // See run_journaled: durable prefix, graceful resumable stop.
        if (config_.metrics != nullptr) {
          config_.metrics->add_counter("journal.storage_full_stops");
        }
        break;
      }
      return appended;
    }
    for (SampleRecord& rec : records) fold_record(state, std::move(rec));
    done = hi;
  }
  merge_observers(std::move(observers));
  SsfResult result = finish_reduce(std::move(state));
  result.fault_space_size = space;
  result.interrupted = done < n;
  return result;
}

}  // namespace fav::mc
