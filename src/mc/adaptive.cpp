#include "mc/adaptive.h"

#include <algorithm>

namespace fav::mc {

using faultsim::FaultSample;
using netlist::NodeId;

AdaptiveImportanceSampler::AdaptiveImportanceSampler(
    const faultsim::AttackModel& attack, const SsfResult& pilot,
    const AdaptiveConfig& config)
    : attack_(attack), config_(config) {
  attack.check_valid();
  FAV_ENSURE(config.smoothing > 0);
  FAV_ENSURE(config.defensive_mix > 0 && config.defensive_mix <= 1.0);
  FAV_ENSURE(config.t_stratum >= 1);
  FAV_ENSURE_MSG(!pilot.records.empty(),
                "adaptive sampling needs pilot records (keep_records)");
  FAV_ENSURE_MSG(pilot.successes > 0,
                "pilot found no successes — nothing to adapt to");

  strata_ = (attack.t_count() + config.t_stratum - 1) / config.t_stratum;
  strata_tables_.resize(static_cast<std::size_t>(strata_));

  // Success mass per (stratum, center), importance-corrected by the pilot's
  // own weights so the refit estimates f-mass, not pilot-g-mass.
  std::vector<std::map<NodeId, double>> mass(
      static_cast<std::size_t>(strata_));
  std::vector<double> stratum_mass(static_cast<std::size_t>(strata_), 0.0);
  for (const SampleRecord& rec : pilot.records) {
    if (!rec.success) continue;
    if (rec.sample.t < attack.t_min || rec.sample.t > attack.t_max) continue;
    const auto s = static_cast<std::size_t>(stratum_of(rec.sample.t));
    mass[s][rec.sample.center] += rec.sample.weight;
    stratum_mass[s] += rec.sample.weight;
  }

  // Build per-stratum tables: every observed-successful center gets its
  // mass; every candidate has the defensive mixture as a floor (no explicit
  // per-center floor needed — the epsilon*f component covers the support).
  std::vector<double> stratum_weights;
  for (int s = 0; s < strata_; ++s) {
    Stratum& table = strata_tables_[static_cast<std::size_t>(s)];
    for (const auto& [center, m] : mass[static_cast<std::size_t>(s)]) {
      table.index[center] = static_cast<int>(table.centers.size());
      table.centers.push_back(center);
      table.weights.push_back(m + config.smoothing);
      table.total += m + config.smoothing;
    }
    if (!table.centers.empty()) {
      table.conditional = DiscreteDistribution(table.weights);
    }
    stratum_weights.push_back(table.total);
  }
  // Ensure at least one stratum carries weight (successes guarantee it).
  stratum_dist_ = DiscreteDistribution(stratum_weights);
}

int AdaptiveImportanceSampler::stratum_of(int t) const {
  return (t - attack_.t_min) / config_.t_stratum;
}

double AdaptiveImportanceSampler::g_pmf(int t, NodeId center) const {
  const double f_tc =
      1.0 / (static_cast<double>(attack_.t_count()) *
             static_cast<double>(attack_.candidate_centers.size()));
  double weighted = 0.0;
  const auto s = static_cast<std::size_t>(stratum_of(t));
  const Stratum& table = strata_tables_[s];
  const auto it = table.index.find(center);
  if (it != table.index.end() && !table.centers.empty()) {
    // Within a stratum the refit spreads a center's mass uniformly over the
    // stratum's t values.
    const int t_lo = attack_.t_min + static_cast<int>(s) * config_.t_stratum;
    const int t_hi = std::min(attack_.t_max, t_lo + config_.t_stratum - 1);
    const double t_share = 1.0 / static_cast<double>(t_hi - t_lo + 1);
    weighted = stratum_dist_.pmf(s) *
               table.conditional.pmf(static_cast<std::size_t>(it->second)) *
               t_share;
  }
  return (1.0 - config_.defensive_mix) * weighted +
         config_.defensive_mix * f_tc;
}

FaultSample AdaptiveImportanceSampler::draw(Rng& rng) {
  FaultSample s;
  if (rng.bernoulli(config_.defensive_mix)) {
    s.t = static_cast<int>(rng.uniform_int(attack_.t_min, attack_.t_max));
    s.center = attack_.candidate_centers[rng.uniform_below(
        attack_.candidate_centers.size())];
  } else {
    const std::size_t stratum = stratum_dist_.sample(rng);
    const Stratum& table = strata_tables_[stratum];
    FAV_CHECK(!table.centers.empty());
    s.center = table.centers[table.conditional.sample(rng)];
    const int t_lo =
        attack_.t_min + static_cast<int>(stratum) * config_.t_stratum;
    const int t_hi = std::min(attack_.t_max, t_lo + config_.t_stratum - 1);
    s.t = static_cast<int>(rng.uniform_int(t_lo, t_hi));
  }
  s.radius = attack_.radii[rng.uniform_below(attack_.radii.size())];
  s.strike_frac = attack_.draw_strike_frac(rng);
  s.impact_cycles = attack_.impact_cycles;
  const double f_tc =
      1.0 / (static_cast<double>(attack_.t_count()) *
             static_cast<double>(attack_.candidate_centers.size()));
  s.weight = f_tc / g_pmf(s.t, s.center);
  return s;
}

AdaptiveGlitchSampler::AdaptiveGlitchSampler(
    const faultsim::ClockGlitchAttackModel& model, std::uint64_t target_cycle,
    const SsfResult& pilot, const AdaptiveConfig& config)
    : model_(model), config_(config) {
  model_.check_valid(target_cycle);
  FAV_ENSURE(config.smoothing > 0);
  FAV_ENSURE(config.defensive_mix > 0 && config.defensive_mix <= 1.0);
  FAV_ENSURE_MSG(!pilot.records.empty(),
                 "adaptive sampling needs pilot records (keep_records)");
  FAV_ENSURE_MSG(pilot.successes > 0,
                 "pilot found no successes — nothing to adapt to");

  const std::size_t cells =
      static_cast<std::size_t>(model_.t_count()) * model_.depths.size();
  std::vector<double> weights(cells, config.smoothing);
  for (const SampleRecord& rec : pilot.records) {
    if (!rec.success) continue;
    if (rec.sample.technique != faultsim::TechniqueKind::kClockGlitch) continue;
    if (rec.sample.t < model_.t_min || rec.sample.t > model_.t_max) continue;
    // Depths are drawn from the model's own grid, so exact comparison is the
    // right match (an off-grid pilot depth simply contributes nothing).
    for (std::size_t d = 0; d < model_.depths.size(); ++d) {
      if (rec.sample.depth == model_.depths[d]) {
        weights[cell_of(rec.sample.t, d)] += rec.sample.weight;
        break;
      }
    }
  }
  cell_dist_ = DiscreteDistribution(weights);
}

std::size_t AdaptiveGlitchSampler::cell_of(int t,
                                           std::size_t depth_index) const {
  return static_cast<std::size_t>(t - model_.t_min) * model_.depths.size() +
         depth_index;
}

double AdaptiveGlitchSampler::g_pmf(int t, std::size_t depth_index) const {
  return (1.0 - config_.defensive_mix) *
             cell_dist_.pmf(cell_of(t, depth_index)) +
         config_.defensive_mix * model_.f_pmf();
}

FaultSample AdaptiveGlitchSampler::draw(Rng& rng) {
  FaultSample s;
  s.technique = faultsim::TechniqueKind::kClockGlitch;
  std::size_t depth_index;
  if (rng.bernoulli(config_.defensive_mix)) {
    s.t = static_cast<int>(rng.uniform_int(model_.t_min, model_.t_max));
    depth_index = rng.uniform_below(model_.depths.size());
  } else {
    const std::size_t cell = cell_dist_.sample(rng);
    s.t = model_.t_min + static_cast<int>(cell / model_.depths.size());
    depth_index = cell % model_.depths.size();
  }
  s.depth = model_.depths[depth_index];
  s.weight = model_.f_pmf() / g_pmf(s.t, depth_index);
  return s;
}

}  // namespace fav::mc
