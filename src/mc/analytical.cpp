#include "mc/analytical.h"

#include <algorithm>

#include "util/check.h"

namespace fav::mc {

using rtl::Machine;

AnalyticalEvaluator::AnalyticalEvaluator(const soc::SecurityBenchmark& bench,
                                         const rtl::GoldenRun& golden)
    : bench_(&bench), golden_(&golden) {
  const auto tt = golden.first_violation_cycle();
  FAV_ENSURE_MSG(tt.has_value(),
                "benchmark '" << bench.name
                              << "' raises no violation in the golden run — "
                                 "cannot locate the target cycle");
  target_cycle_ = *tt;
}

std::optional<bool> AnalyticalEvaluator::evaluate(
    const rtl::ArchState& faulty, std::uint64_t first_faulty_cycle) const {
  // A corrupted-then-reprogrammed configuration cannot be replayed
  // statically: bail on later writes to the MPU configuration/status page
  // (region registers, sticky flag, control). Writes to other device
  // registers (e.g. the DMA engine) do not touch the corrupted policy.
  for (const rtl::AccessRecord& a : golden_->accesses()) {
    if (a.cycle >= first_faulty_cycle && a.is_device && a.is_write &&
        a.addr <= rtl::kMpuEnableAddr) {
      return std::nullopt;
    }
  }
  // Corrupted DMA registers change which addresses the engine touches; the
  // recorded trace and attack path assume the golden ones.
  {
    const rtl::ArchState ref =
        golden_->state_at(std::min(first_faulty_cycle, golden_->length()));
    if (faulty.dma_src != ref.dma_src || faulty.dma_dst != ref.dma_dst ||
        faulty.dma_len != ref.dma_len ||
        faulty.dma_active != ref.dma_active) {
      return std::nullopt;
    }
  }
  // An already-set sticky flag survives to the oracle check (no device write
  // after the fault can clear it — verified above).
  if (faulty.viol_sticky) return false;

  const bool exec_kind =
      bench_->kind == soc::SecurityBenchmark::Kind::kIllegalExecute;
  if (exec_kind && bench_->attack_path.empty()) {
    return std::nullopt;  // cannot reconstruct the post-Tt trajectory
  }
  // For control-flow-changing attacks, the golden trajectory is only valid
  // before the target cycle; past it, the benchmark's attack_path describes
  // the successful run. A fault landing after Tt is too late (the denied
  // access already happened under the golden configuration).
  if (exec_kind && first_faulty_cycle > target_cycle_) return false;
  const std::uint64_t replay_end =
      exec_kind ? target_cycle_ : golden_->length();

  // Data accesses along the golden trajectory. DMA accesses additionally
  // treat the device page as denied (the engine may not touch it).
  bool illegal_seen = false;
  for (const rtl::AccessRecord& a : golden_->accesses()) {
    if (a.cycle < first_faulty_cycle || a.is_device) continue;
    if (a.cycle >= replay_end) break;  // records are in cycle order
    const bool allowed =
        Machine::mpu_allows(faulty, a.addr, a.is_write) &&
        (!a.is_dma || a.addr < rtl::kDeviceBase);
    if (!exec_kind && a.cycle == target_cycle_) {
      illegal_seen = true;
      if (!allowed) return false;  // still blocked and detected
    } else if (!allowed) {
      return false;  // a legitimate access now violates: attack exposed
    }
  }

  // Instruction fetches along the golden trajectory (paper Fig. 1's second
  // check path). Only needed when the faulty configuration checks fetches;
  // a single denial squashes execution and trips the sticky flag.
  if (faulty.mpu_enable && faulty.instr_check) {
    for (std::uint64_t c = first_faulty_cycle; c < replay_end; ++c) {
      if (!Machine::mpu_allows_exec(faulty, golden_->pc_at(c))) return false;
    }
  }

  // The attack path (accesses only the *successful* trajectory performs)
  // must be fully permitted. For kIllegalExecute it is the hidden routine;
  // other benchmarks may use it too (e.g. the DMA transfer the golden run
  // aborted at the target cycle).
  for (const auto& p : bench_->attack_path) {
    const bool ok = p.is_fetch
                        ? Machine::mpu_allows_exec(faulty, p.addr)
                        : Machine::mpu_allows(faulty, p.addr, p.is_write);
    if (!ok) return false;
  }
  if (exec_kind) return true;

  if (!illegal_seen) {
    // Fault landed after the target cycle: the illegal access already
    // executed (and was denied) under the golden configuration.
    return false;
  }
  return true;
}

}  // namespace fav::mc
