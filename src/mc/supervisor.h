// Multi-process campaign supervisor: hard worker isolation, watchdog
// restarts, and sample quarantine (DESIGN.md §6h).
//
// The in-process engine (mc/evaluator.h) isolates per-sample *exceptions*,
// but a sample that segfaults the simulator, is OOM-killed, or wedges in
// native code takes the whole campaign with it. The supervisor moves the
// isolation boundary to the OS process:
//
//   supervisor ──pipe──> worker 0   (fav worker --worker-id 0 ...)
//              ──pipe──> worker 1   ...
//
// Each worker re-elaborates the framework from the same CLI flags, re-draws
// the identical sample batch (the determinism contract makes the stream a
// pure function of the seed), and evaluates the contiguous sample-index
// shards the supervisor assigns over a length-prefixed pipe protocol. A
// worker journals every completed shard to its own `worker-<k>.fj` before
// acknowledging it, so the supervisor can always reconstruct what a dead
// worker finished. Liveness is per-sample PROGRESS frames: a worker that
// misses its heartbeat deadline (or dies) is SIGKILLed and respawned with
// exponential backoff; a shard whose evaluation kills workers
// `max_shard_attempts` times is quarantined — its samples are recorded as
// OutcomePath::kFailed with ErrorCode::kWorkerCrashed instead of being
// retried forever.
//
// The final result is assembled by merging the worker journals in
// sample-index order and folding them through the engine's own reduction,
// so a supervised campaign is bitwise-identical to the single-process
// engine at every worker count — including after worker crashes, and after
// the supervisor itself is SIGKILLed and resumed.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "mc/evaluator.h"
#include "mc/samplers.h"
#include "util/metrics.h"
#include "util/status.h"

namespace fav::mc {

/// --- wire protocol (exposed for tests) -----------------------------------
/// Every message is one subprocess frame (util/subprocess.h) whose payload
/// starts with a WireType byte. Values are part of the protocol; append new
/// types at the end only.
enum class WireType : std::uint8_t {
  kReady = 1,     // worker -> supervisor: elaborated, journal open
  kAssign = 2,    // supervisor -> worker: evaluate samples [lo, hi)
  kProgress = 3,  // worker -> supervisor: one sample done (heartbeat)
  kDone = 4,      // worker -> supervisor: shard [lo, hi) journaled
  kShutdown = 5,  // supervisor -> worker: ship metrics and exit
  kMetrics = 6,   // worker -> supervisor: serialized MetricsSink
};

/// Decoded form of any protocol message; only the fields of the given type
/// are meaningful.
struct WireMessage {
  WireType type = WireType::kReady;
  std::uint64_t lo = 0;  // kAssign / kDone
  std::uint64_t hi = 0;  // kAssign / kDone
  std::uint64_t index = 0;      // kProgress: absolute sample index
  double contribution = 0.0;    // kProgress
  double weight = 0.0;          // kProgress
  bool failed = false;          // kProgress
  std::string blob;             // kMetrics: MetricsSink::serialize bytes
};

std::string encode_ready();
std::string encode_assign(std::uint64_t lo, std::uint64_t hi);
std::string encode_progress(std::uint64_t index, double contribution,
                            double weight, bool failed);
std::string encode_done(std::uint64_t lo, std::uint64_t hi);
std::string encode_shutdown();
std::string encode_metrics(const MetricsSink& sink);
/// False on malformed payloads (unknown type byte, truncated fields).
bool decode_message(std::string_view payload, WireMessage* out);

/// Journal shard file owned by worker `worker_id`: "worker-<k>.fj".
std::string worker_journal_file(std::size_t worker_id);
/// The merge pattern covering every worker's file.
inline const char* worker_journal_pattern() { return "worker-*.fj"; }

/// --- supervisor ----------------------------------------------------------

struct SupervisorConfig {
  /// Worker processes to keep alive (>= 1).
  std::size_t workers = 1;
  /// Samples per assignment — the granularity of loss on a worker crash and
  /// of the graceful-stop latency.
  std::size_t shard_size = 256;
  /// A ready worker that produces no frame (progress or control) for this
  /// long is presumed wedged, SIGKILLed and restarted. Must comfortably
  /// exceed the slowest single sample.
  std::uint64_t heartbeat_ms = 30000;
  /// Spawn -> READY deadline. Workers re-elaborate the whole framework
  /// before reporting ready, which takes seconds — this deadline is separate
  /// from (and much larger than) the per-sample heartbeat.
  std::uint64_t startup_ms = 120000;
  /// Exponential backoff between a worker's death and its respawn.
  std::uint64_t backoff_base_ms = 250;
  std::uint64_t backoff_max_ms = 5000;
  /// A shard that was assigned when a worker died this many times is
  /// quarantined instead of reassigned.
  int max_shard_attempts = 2;
  /// Consecutive deaths *before reaching READY* that disable a worker slot
  /// (a worker that cannot even elaborate will never make progress).
  int max_startup_failures = 3;

  /// argv of a worker process ("<fav> worker --worker-id <k>" is appended by
  /// the supervisor; everything identifying the campaign — benchmark, seed,
  /// flags — must already be present so the worker re-derives the identical
  /// batch).
  std::vector<std::string> worker_command;
  /// Extra argv appended only to worker 0's *first* spawn, dropped on
  /// restarts and never given to other slots. Carries test-only one-shot
  /// crash injection (--crash-after-samples): re-firing it after a restart
  /// would loop forever, and giving it to two slots could kill the same
  /// rescheduled shard twice and quarantine it.
  std::vector<std::string> first_spawn_args;

  /// Journal directory (required). resume=false clears stale worker shard
  /// files; resume=true harvests them and only assigns the missing ranges.
  std::string dir;
  bool resume = false;
  std::uint64_t fingerprint = 0;
  std::string context;

  /// Aggregated observability (all optional): worker sinks are merged in
  /// worker-index order, then supervisor.* counters (restarts, quarantined,
  /// spawns) are added; progress receives one record per PROGRESS frame.
  MetricsSink* metrics = nullptr;
  ProgressMeter* progress = nullptr;
  /// Invoked once per worker PROGRESS frame (one evaluated sample), from the
  /// supervisor's event-loop thread. The serving tier uses this to stream
  /// throttled progress to remote clients; counts are approximate under
  /// restarts (a respawned shard re-evaluates its samples).
  std::function<void()> on_sample;
  /// Graceful stop: no new shards are assigned, workers finish their
  /// in-flight shard, ship metrics and exit; the result covers the journaled
  /// prefix and is marked interrupted.
  const std::atomic<bool>* stop = nullptr;
  /// Diagnostics sink (restarts, quarantines); null routes to stderr.
  std::function<void(const std::string&)> log;
};

struct SupervisedResult {
  SsfResult result;
  /// Unexpected worker deaths that led to a respawn.
  std::size_t restarts = 0;
  /// Shards (and the samples they cover) written off as kWorkerCrashed.
  std::size_t quarantined_shards = 0;
  std::size_t quarantined_samples = 0;
  /// Workers that exited with kExitResumableStop (storage full/failing);
  /// > 0 implies the campaign stopped gracefully and is resumable.
  std::size_t storage_full_stops = 0;
};

/// Runs a campaign across OS-process workers (see file header). The
/// evaluator is only used on the supervisor side for draw_batch (sample
/// cross-checks, quarantine records) and the final reduction — all
/// simulation happens inside the worker processes.
///
/// run() is re-entrant across threads: the serve daemon runs one supervisor
/// per in-flight campaign, each on its own thread. The only requirements are
/// distinct journal directories (`config.dir`) per concurrent campaign and
/// an ignored SIGPIPE disposition (run() sets it; the setting is process-
/// wide and idempotent). Worker pipes are O_CLOEXEC, so concurrent fleets
/// never leak fds into each other's workers.
class CampaignSupervisor {
 public:
  CampaignSupervisor(const SsfEvaluator& evaluator, SupervisorConfig config);

  /// Draws the n-sample batch (advancing `rng` exactly like the
  /// single-process engine), runs the supervised campaign, and reduces the
  /// merged worker journals. Fails (non-ok Result) on configuration errors,
  /// unrecoverable worker-fleet failure, or journal corruption.
  Result<SupervisedResult> run(Sampler& sampler, Rng& rng,
                               std::size_t n) const;

  /// Runs the supervised campaign over an explicit, pre-materialized batch.
  /// This is the exhaustive-sweep seam: the CLI enumerates the technique's
  /// bound fault space into the batch, and each worker re-derives the
  /// identical enumeration from the forwarded --exhaustive flags, so shards
  /// over enumeration-index ranges merge exactly like sampled shards.
  Result<SupervisedResult> run_batch(
      std::vector<faultsim::FaultSample> samples) const;

 private:
  const SsfEvaluator* evaluator_;
  SupervisorConfig config_;
};

/// --- worker side ---------------------------------------------------------

/// Process exit code of a worker (and of `fav evaluate`) that stopped
/// gracefully because the storage device filled or failed mid-campaign
/// (ErrorCode::kStorageFull). Every journaled shard is intact and the
/// campaign is resumable; the supervisor treats this exit as a fleet-wide
/// graceful stop — the in-flight shard goes back to pending with no
/// attempts charge (no quarantine) and the slot is not respawned.
constexpr int kExitResumableStop = 3;

/// Sentinel for "no crash injection" (see WorkerHeartbeat::set_crash_on).
constexpr std::uint64_t kNoCrashIndex = ~0ull;

/// Per-sample PROGRESS sender installed as EvaluatorConfig::on_sample inside
/// a worker process. Thread-safe (the engine invokes it from worker
/// threads); each frame is one atomic pipe write. Also hosts the test-only
/// crash injection used by the chaos tests: the process SIGKILLs *itself*
/// mid-shard, exactly like a segfault would, at a configurable point.
class WorkerHeartbeat {
 public:
  explicit WorkerHeartbeat(int out_fd) : fd_(out_fd) {}

  /// Absolute sample index of the slice the engine is about to evaluate
  /// (run_batch reports slice-relative indices).
  void set_base(std::uint64_t base) {
    base_.store(base, std::memory_order_relaxed);
  }
  /// SIGKILL this process after `count` completed samples (0 disables).
  void set_crash_after(std::uint64_t count) { crash_after_ = count; }
  /// SIGKILL this process right after completing the given absolute sample
  /// index — a *deterministic* crash that re-fires on every retry, driving
  /// the quarantine path (kNoCrashIndex disables).
  void set_crash_on(std::uint64_t index) { crash_on_ = index; }

  /// EvaluatorConfig::on_sample hook. Write errors are ignored: a vanished
  /// supervisor surfaces as EOF on the next assignment read.
  void on_sample(const SampleRecord& record, std::size_t slice_index);

 private:
  int fd_;
  std::atomic<std::uint64_t> base_{0};
  std::atomic<std::uint64_t> completed_{0};
  std::uint64_t crash_after_ = 0;
  std::uint64_t crash_on_ = kNoCrashIndex;
};

struct WorkerLoopOptions {
  std::string dir;
  std::size_t worker_id = 0;
  std::uint64_t fingerprint = 0;
  std::string context;
  /// Pipe fds (stdin/stdout of the spawned process by default; tests can
  /// run the loop in-process over socketpairs).
  int in_fd = 0;
  int out_fd = 1;
};

/// The worker side of the protocol: opens (or re-opens, after a restart)
/// this worker's journal shard file, reports READY, and serves ASSIGN
/// messages until SHUTDOWN or EOF (supervisor gone). `samples` must be the
/// full campaign batch — the worker evaluates assigned slices of it through
/// `evaluator`.run_batch, so the evaluator must keep full records
/// (keep_records, no record_capacity) and should have reduce_metrics off and
/// `heartbeat` installed as its on_sample hook. `metrics` (may be null) is
/// shipped to the supervisor on SHUTDOWN.
Status run_worker_loop(const SsfEvaluator& evaluator,
                       const std::vector<faultsim::FaultSample>& samples,
                       WorkerHeartbeat& heartbeat,
                       const WorkerLoopOptions& options, MetricsSink* metrics);

}  // namespace fav::mc
