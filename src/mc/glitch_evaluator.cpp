#include "mc/glitch_evaluator.h"

namespace fav::mc {

ClockGlitchEvaluator::ClockGlitchEvaluator(
    const SsfEvaluator& base, const soc::SocNetlist& soc,
    const faultsim::ClockGlitchSimulator& glitch)
    : technique_(glitch),
      engine_(soc, technique_, base.benchmark(), base.golden(),
              base.characterization(), base.config()) {}

SampleRecord ClockGlitchEvaluator::evaluate(int t, double depth) const {
  faultsim::FaultSample sample;
  sample.technique = faultsim::TechniqueKind::kClockGlitch;
  sample.t = t;
  sample.depth = depth;
  return engine_.evaluate_sample(sample);
}

SsfResult ClockGlitchEvaluator::run(
    const faultsim::ClockGlitchAttackModel& model, Rng& rng,
    std::size_t n) const {
  GlitchSampler sampler(model, engine_.target_cycle());
  return engine_.run(sampler, rng, n);
}

SsfResult ClockGlitchEvaluator::evaluate_exact(
    const faultsim::ClockGlitchAttackModel& model) const {
  model.check_valid(engine_.target_cycle());
  // Bind the model as the technique's enumerable space and stream it through
  // the generic exhaustive driver: the grid is enumerated in bounded chunks
  // (t outer, depth inner — the technique's stable enumeration order)
  // instead of being materialized whole, so memory stays O(chunk) for
  // arbitrarily fine grids while the result is bitwise-identical.
  technique_.bind_space(model);
  return engine_.run_exhaustive();
}

}  // namespace fav::mc
