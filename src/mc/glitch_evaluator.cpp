#include "mc/glitch_evaluator.h"

#include "soc/gate_machine.h"

namespace fav::mc {

ClockGlitchEvaluator::ClockGlitchEvaluator(
    const SsfEvaluator& base, const soc::SocNetlist& soc,
    const faultsim::ClockGlitchSimulator& glitch)
    : base_(&base), soc_(&soc), glitch_(&glitch) {}

GlitchSampleRecord ClockGlitchEvaluator::evaluate(int t, double depth) const {
  FAV_ENSURE_MSG(t >= 0, "negative timing distance not supported");
  FAV_ENSURE_MSG(depth > 0.0 && depth < 1.0, "depth must be in (0, 1)");
  GlitchSampleRecord rec;
  rec.t = t;
  rec.depth = depth;
  const std::uint64_t tt = base_->target_cycle();
  if (static_cast<std::uint64_t>(t) > tt) {
    return rec;  // before program start: masked
  }
  rec.te = tt - static_cast<std::uint64_t>(t);

  rtl::Machine machine = base_->golden().restore(rec.te);
  soc::GateLevelMachine gate(*soc_, base_->golden().program());
  gate.load_state(machine.state());
  gate.mutable_ram() = machine.ram();
  gate.settle_inputs();

  const double period = glitch_->timing().clock_period() * depth;
  for (const netlist::NodeId dff : glitch_->flipped_dffs(gate.sim(), period)) {
    const int bit = soc_->flat_bit_for_dff(dff);
    FAV_ENSURE(bit >= 0);
    rec.flipped_bits.push_back(bit);
  }
  rec.success = base_->outcome_for_flips(rec.te, rec.flipped_bits, &rec.path);
  return rec;
}

GlitchSsfResult ClockGlitchEvaluator::run(
    const faultsim::ClockGlitchAttackModel& model, Rng& rng,
    std::size_t n) const {
  model.check_valid();
  GlitchSsfResult result;
  for (std::size_t i = 0; i < n; ++i) {
    const int t = static_cast<int>(rng.uniform_int(model.t_min, model.t_max));
    const double depth = model.depths[rng.uniform_below(model.depths.size())];
    GlitchSampleRecord rec = evaluate(t, depth);
    result.stats.add(rec.success ? 1.0 : 0.0);
    if (rec.success) ++result.successes;
    result.records.push_back(std::move(rec));
  }
  return result;
}

GlitchSsfResult ClockGlitchEvaluator::evaluate_exact(
    const faultsim::ClockGlitchAttackModel& model) const {
  model.check_valid();
  GlitchSsfResult result;
  for (int t = model.t_min; t <= model.t_max; ++t) {
    for (const double depth : model.depths) {
      GlitchSampleRecord rec = evaluate(t, depth);
      result.stats.add(rec.success ? 1.0 : 0.0);
      if (rec.success) ++result.successes;
      result.records.push_back(std::move(rec));
    }
  }
  return result;
}

}  // namespace fav::mc
