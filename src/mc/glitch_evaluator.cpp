#include "mc/glitch_evaluator.h"

namespace fav::mc {

ClockGlitchEvaluator::ClockGlitchEvaluator(
    const SsfEvaluator& base, const soc::SocNetlist& soc,
    const faultsim::ClockGlitchSimulator& glitch)
    : technique_(glitch),
      engine_(soc, technique_, base.benchmark(), base.golden(),
              base.characterization(), base.config()) {}

SampleRecord ClockGlitchEvaluator::evaluate(int t, double depth) const {
  faultsim::FaultSample sample;
  sample.technique = faultsim::TechniqueKind::kClockGlitch;
  sample.t = t;
  sample.depth = depth;
  return engine_.evaluate_sample(sample);
}

SsfResult ClockGlitchEvaluator::run(
    const faultsim::ClockGlitchAttackModel& model, Rng& rng,
    std::size_t n) const {
  GlitchSampler sampler(model, engine_.target_cycle());
  return engine_.run(sampler, rng, n);
}

SsfResult ClockGlitchEvaluator::evaluate_exact(
    const faultsim::ClockGlitchAttackModel& model) const {
  model.check_valid(engine_.target_cycle());
  std::vector<faultsim::FaultSample> samples;
  samples.reserve(static_cast<std::size_t>(model.t_count()) *
                  model.depths.size());
  for (int t = model.t_min; t <= model.t_max; ++t) {
    for (const double depth : model.depths) {
      faultsim::FaultSample s;
      s.technique = faultsim::TechniqueKind::kClockGlitch;
      s.t = t;
      s.depth = depth;
      samples.push_back(s);
    }
  }
  return engine_.run_batch(std::move(samples));
}

}  // namespace fav::mc
