#include "mc/supervisor.h"

#include <errno.h>
#include <poll.h>
#include <signal.h>
#include <time.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <filesystem>

#include "mc/journal.h"
#include "util/subprocess.h"

namespace fav::mc {

namespace {

// --- wire codec -----------------------------------------------------------

template <typename T>
void put(std::string& out, T value) {
  static_assert(std::is_trivially_copyable_v<T>);
  char bytes[sizeof(T)];
  std::memcpy(bytes, &value, sizeof(T));
  out.append(bytes, sizeof(T));
}

template <typename T>
bool get(std::string_view data, std::size_t* offset, T* value) {
  static_assert(std::is_trivially_copyable_v<T>);
  if (data.size() - *offset < sizeof(T)) return false;
  std::memcpy(value, data.data() + *offset, sizeof(T));
  *offset += sizeof(T);
  return true;
}

}  // namespace

std::string encode_ready() {
  std::string out;
  put(out, static_cast<std::uint8_t>(WireType::kReady));
  return out;
}

std::string encode_assign(std::uint64_t lo, std::uint64_t hi) {
  std::string out;
  put(out, static_cast<std::uint8_t>(WireType::kAssign));
  put(out, lo);
  put(out, hi);
  return out;
}

std::string encode_progress(std::uint64_t index, double contribution,
                            double weight, bool failed) {
  std::string out;
  put(out, static_cast<std::uint8_t>(WireType::kProgress));
  put(out, index);
  put(out, contribution);
  put(out, weight);
  put(out, static_cast<std::uint8_t>(failed ? 1 : 0));
  return out;
}

std::string encode_done(std::uint64_t lo, std::uint64_t hi) {
  std::string out;
  put(out, static_cast<std::uint8_t>(WireType::kDone));
  put(out, lo);
  put(out, hi);
  return out;
}

std::string encode_shutdown() {
  std::string out;
  put(out, static_cast<std::uint8_t>(WireType::kShutdown));
  return out;
}

std::string encode_metrics(const MetricsSink& sink) {
  std::string out;
  put(out, static_cast<std::uint8_t>(WireType::kMetrics));
  sink.serialize(out);
  return out;
}

bool decode_message(std::string_view payload, WireMessage* out) {
  std::size_t off = 0;
  std::uint8_t type = 0;
  if (!get(payload, &off, &type)) return false;
  if (type < static_cast<std::uint8_t>(WireType::kReady) ||
      type > static_cast<std::uint8_t>(WireType::kMetrics)) {
    return false;
  }
  out->type = static_cast<WireType>(type);
  switch (out->type) {
    case WireType::kReady:
    case WireType::kShutdown:
      return off == payload.size();
    case WireType::kAssign:
    case WireType::kDone:
      return get(payload, &off, &out->lo) && get(payload, &off, &out->hi) &&
             off == payload.size();
    case WireType::kProgress: {
      std::uint8_t failed = 0;
      if (!get(payload, &off, &out->index) ||
          !get(payload, &off, &out->contribution) ||
          !get(payload, &off, &out->weight) ||
          !get(payload, &off, &failed) || off != payload.size()) {
        return false;
      }
      out->failed = failed != 0;
      return true;
    }
    case WireType::kMetrics:
      out->blob.assign(payload.substr(off));
      return true;
  }
  return false;
}

std::string worker_journal_file(std::size_t worker_id) {
  return "worker-" + std::to_string(worker_id) + ".fj";
}

// --- worker side ----------------------------------------------------------

void WorkerHeartbeat::on_sample(const SampleRecord& record,
                                std::size_t slice_index) {
  const std::uint64_t index =
      base_.load(std::memory_order_relaxed) + slice_index;
  const bool failed = record.path == OutcomePath::kFailed;
  // Best-effort: a write failure means the supervisor is gone, which the
  // assignment loop detects as EOF (SIGPIPE is ignored in worker mode).
  (void)write_frame(fd_, encode_progress(index, record.contribution,
                                         record.sample.weight, failed));
  // Test-only chaos injection: die exactly like a segfault would —
  // mid-shard, after the sample's heartbeat, with the shard unjournaled.
  if (crash_on_ == index) ::raise(SIGKILL);
  if (crash_after_ != 0 &&
      completed_.fetch_add(1, std::memory_order_relaxed) + 1 ==
          crash_after_) {
    ::raise(SIGKILL);
  }
}

Status run_worker_loop(const SsfEvaluator& evaluator,
                       const std::vector<faultsim::FaultSample>& samples,
                       WorkerHeartbeat& heartbeat,
                       const WorkerLoopOptions& options,
                       MetricsSink* metrics) {
  // The journal needs every record of an assigned shard.
  FAV_ENSURE(evaluator.config().keep_records &&
             evaluator.config().record_capacity == 0);

  JournalWriter writer;
  writer.set_metrics(metrics);
  const std::string file = worker_journal_file(options.worker_id);
  bool appended = false;
  {
    // Restart-aware open: if our shard file already belongs to this campaign
    // (we are a respawn, or a resumed run), append after its valid prefix —
    // the supervisor has already harvested those shards and will not
    // reassign them.
    Result<JournalShards> existing =
        JournalReader::read_shards(options.dir, file);
    if (existing.is_ok() &&
        existing.value().meta.fingerprint == options.fingerprint &&
        existing.value().meta.total_samples == samples.size()) {
      const Status opened =
          writer.open_append(options.dir, existing.value().valid_bytes, file);
      if (!opened.is_ok()) return opened;
      appended = true;
    }
  }
  if (!appended) {
    JournalMeta meta;
    meta.fingerprint = options.fingerprint;
    meta.total_samples = samples.size();
    meta.context = options.context;
    const Status opened = writer.open_fresh(options.dir, meta, file);
    if (!opened.is_ok()) return opened;
  }

  const Status ready = write_frame(options.out_fd, encode_ready());
  if (!ready.is_ok()) return Status::ok();  // supervisor already gone

  FrameBuffer buf;
  for (;;) {
    Result<std::string> frame = read_frame(options.in_fd, buf, -1);
    if (!frame.is_ok()) {
      if (frame.status().code() == ErrorCode::kDeadlineExceeded) {
        continue;  // interrupted by a signal; keep waiting
      }
      // EOF / broken pipe: the supervisor died. Workers never outlive it.
      return Status::ok();
    }
    WireMessage msg;
    if (!decode_message(frame.value(), &msg)) {
      return Status(ErrorCode::kSubprocessFailed,
                    "worker received a malformed protocol frame");
    }
    if (msg.type == WireType::kShutdown) {
      MetricsSink empty;
      (void)write_frame(options.out_fd,
                        encode_metrics(metrics != nullptr ? *metrics : empty));
      return Status::ok();
    }
    if (msg.type != WireType::kAssign) {
      return Status(ErrorCode::kSubprocessFailed,
                    "worker received an unexpected protocol message");
    }
    if (msg.lo >= msg.hi || msg.hi > samples.size()) {
      return Status(ErrorCode::kSubprocessFailed,
                    "worker received an out-of-range shard assignment [" +
                        std::to_string(msg.lo) + ", " +
                        std::to_string(msg.hi) + ")");
    }
    heartbeat.set_base(msg.lo);
    std::vector<faultsim::FaultSample> slice(
        samples.begin() + static_cast<std::ptrdiff_t>(msg.lo),
        samples.begin() + static_cast<std::ptrdiff_t>(msg.hi));
    SsfResult shard = evaluator.run_batch(std::move(slice));
    FAV_CHECK(shard.records.size() == msg.hi - msg.lo);
    // Journal first, acknowledge second: a DONE without a durable shard
    // could never be reconstructed, while a journaled shard whose DONE frame
    // is lost is harvested from the file after our death.
    const Status journaled =
        writer.append_shard(msg.lo, shard.records.data(),
                            shard.records.size());
    if (!journaled.is_ok()) return journaled;
    const Status done = write_frame(options.out_fd,
                                    encode_done(msg.lo, msg.hi));
    if (!done.is_ok()) return Status::ok();  // supervisor gone
  }
}

// --- supervisor -----------------------------------------------------------

namespace {

struct ShardState {
  enum class S { kPending, kAssigned, kDone, kQuarantined };
  std::uint64_t lo = 0;
  std::uint64_t hi = 0;
  S state = S::kPending;
  int attempts = 0;  // worker deaths while this shard was assigned
};

struct WorkerSlot {
  Subprocess proc;
  FrameBuffer buf;
  bool alive = false;
  bool ready = false;
  bool shutdown_sent = false;
  int shard = -1;  // index into the shard list; -1 = idle
  std::uint64_t deadline_at_ns = 0;
  bool respawn_scheduled = false;
  std::uint64_t respawn_at_ns = 0;
  std::uint64_t backoff_ms = 0;
  std::size_t spawns = 0;
  int startup_failures = 0;
  bool disabled = false;
  MetricsSink sink;  // metrics shipped by clean incarnations, accumulated
};

/// One supervised fleet run: spawns the workers, drives the poll/watchdog
/// event loop, and leaves the shard states + presence bitmap describing what
/// got journaled. Single-threaded by design — all worker concurrency lives
/// in the OS processes.
class Fleet {
 public:
  Fleet(const SupervisorConfig& config, std::vector<ShardState>* shards,
        std::vector<std::uint8_t>* present, SupervisedResult* sup)
      : config_(config), shards_(shards), present_(present), sup_(sup) {
    for (const ShardState& s : *shards_) {
      if (s.state == ShardState::S::kPending) ++unresolved_;
    }
  }

  Status run() {
    const std::size_t count = std::max<std::size_t>(
        1, std::min(config_.workers, shards_->size()));
    slots_.resize(count);
    for (WorkerSlot& s : slots_) s.backoff_ms = config_.backoff_base_ms;
    for (std::size_t k = 0; k < count; ++k) spawn(k);

    while (fatal_.is_ok()) {
      if (config_.stop != nullptr &&
          config_.stop->load(std::memory_order_relaxed)) {
        stopping_ = true;
      }
      fire_due_respawns();
      dispatch_idle_workers();
      if (!any_alive() && !any_respawn_scheduled()) break;
      poll_workers();
      enforce_deadlines();
    }
    if (!fatal_.is_ok()) {
      for (std::size_t k = 0; k < slots_.size(); ++k) {
        if (slots_[k].alive) {
          slots_[k].proc.kill(SIGKILL);
          slots_[k].proc.close_pipes();
          slots_[k].proc.wait();
          slots_[k].alive = false;
        }
      }
      return fatal_;
    }
    if (unresolved_ > 0 && !stopping_) {
      return Status(ErrorCode::kSubprocessFailed,
                    "worker fleet failed with " + std::to_string(unresolved_) +
                        " shard(s) unfinished and no usable workers left");
    }
    return Status::ok();
  }

  const std::vector<WorkerSlot>& slots() const { return slots_; }

 private:
  void log_line(const std::string& message) const {
    if (config_.log) {
      config_.log(message);
    } else {
      std::fprintf(stderr, "fav: %s\n", message.c_str());
    }
  }

  bool any_alive() const {
    for (const WorkerSlot& s : slots_) {
      if (s.alive) return true;
    }
    return false;
  }

  bool any_respawn_scheduled() const {
    for (const WorkerSlot& s : slots_) {
      if (s.respawn_scheduled) return true;
    }
    return false;
  }

  int next_pending() const {
    for (std::size_t i = 0; i < shards_->size(); ++i) {
      if ((*shards_)[i].state == ShardState::S::kPending) {
        return static_cast<int>(i);
      }
    }
    return -1;
  }

  void spawn(std::size_t k) {
    WorkerSlot& s = slots_[k];
    std::vector<std::string> argv = config_.worker_command;
    argv.push_back("--worker-id");
    argv.push_back(std::to_string(k));
    if (k == 0 && s.spawns == 0) {
      // Crash-injection flags ride only on worker 0's first incarnation.
      // Restarts must not re-fire them, and two first-incarnation workers
      // crashing on the same rescheduled shard would count as two kills and
      // quarantine a perfectly healthy shard.
      argv.insert(argv.end(), config_.first_spawn_args.begin(),
                  config_.first_spawn_args.end());
    }
    ++s.spawns;
    Result<Subprocess> spawned = Subprocess::spawn(argv);
    if (!spawned.is_ok()) {
      log_line("worker " + std::to_string(k) +
               " spawn failed: " + spawned.status().to_string());
      note_startup_failure(k);
      return;
    }
    s.proc = std::move(spawned).value();
    s.alive = true;
    s.ready = false;
    s.shutdown_sent = false;
    s.shard = -1;
    s.buf = FrameBuffer();
    s.deadline_at_ns = monotonic_ns() + config_.startup_ms * 1'000'000ull;
  }

  void note_startup_failure(std::size_t k) {
    WorkerSlot& s = slots_[k];
    if (++s.startup_failures >= config_.max_startup_failures) {
      s.disabled = true;
      log_line("worker " + std::to_string(k) + " disabled after " +
               std::to_string(s.startup_failures) + " startup failure(s)");
      return;
    }
    schedule_respawn(k);
  }

  void schedule_respawn(std::size_t k) {
    WorkerSlot& s = slots_[k];
    if (stopping_ || s.disabled || unresolved_ == 0) return;
    ++sup_->restarts;
    s.respawn_scheduled = true;
    s.respawn_at_ns = monotonic_ns() + s.backoff_ms * 1'000'000ull;
    log_line("restarting worker " + std::to_string(k) + " in " +
             std::to_string(s.backoff_ms) + " ms");
    s.backoff_ms = std::min(s.backoff_ms * 2, config_.backoff_max_ms);
  }

  void fire_due_respawns() {
    const std::uint64_t now = monotonic_ns();
    for (std::size_t k = 0; k < slots_.size(); ++k) {
      WorkerSlot& s = slots_[k];
      if (!s.respawn_scheduled || now < s.respawn_at_ns) continue;
      s.respawn_scheduled = false;
      if (!stopping_ && !s.disabled && unresolved_ > 0) spawn(k);
    }
  }

  void dispatch_idle_workers() {
    for (std::size_t k = 0; k < slots_.size(); ++k) {
      WorkerSlot& s = slots_[k];
      if (!s.alive || !s.ready || s.shard != -1 || s.shutdown_sent) continue;
      const int next = stopping_ ? -1 : next_pending();
      if (next >= 0) {
        ShardState& sh = (*shards_)[next];
        const Status sent =
            write_frame(s.proc.stdin_fd(), encode_assign(sh.lo, sh.hi));
        if (!sent.is_ok()) {
          kill_worker(k, "assignment write failed: " + sent.to_string());
          continue;
        }
        sh.state = ShardState::S::kAssigned;
        s.shard = next;
        s.deadline_at_ns =
            monotonic_ns() + config_.heartbeat_ms * 1'000'000ull;
      } else {
        const Status sent =
            write_frame(s.proc.stdin_fd(), encode_shutdown());
        s.shutdown_sent = true;
        s.deadline_at_ns =
            monotonic_ns() + config_.heartbeat_ms * 1'000'000ull;
        if (!sent.is_ok()) {
          kill_worker(k, "shutdown write failed: " + sent.to_string());
        }
      }
    }
  }

  int poll_timeout_ms() const {
    const std::uint64_t now = monotonic_ns();
    std::uint64_t next = now + 500'000'000ull;  // 500 ms cap
    for (const WorkerSlot& s : slots_) {
      if (s.alive) next = std::min(next, s.deadline_at_ns);
      if (s.respawn_scheduled) next = std::min(next, s.respawn_at_ns);
    }
    if (next <= now) return 0;
    return static_cast<int>((next - now) / 1'000'000ull + 1);
  }

  void poll_workers() {
    std::vector<struct pollfd> fds;
    std::vector<std::size_t> owner;
    for (std::size_t k = 0; k < slots_.size(); ++k) {
      if (!slots_[k].alive) continue;
      struct pollfd pfd {};
      pfd.fd = slots_[k].proc.stdout_fd();
      pfd.events = POLLIN;
      fds.push_back(pfd);
      owner.push_back(k);
    }
    const int timeout = poll_timeout_ms();
    if (fds.empty()) {
      // Only respawn timers remain; sleep until the nearest one.
      struct timespec ts {};
      ts.tv_sec = timeout / 1000;
      ts.tv_nsec = (timeout % 1000) * 1'000'000l;
      ::nanosleep(&ts, nullptr);
      return;
    }
    const int rc = ::poll(fds.data(), static_cast<nfds_t>(fds.size()),
                          timeout);
    if (rc < 0) {
      if (errno == EINTR) return;  // re-check stop flag at loop top
      fatal_ = Status(ErrorCode::kSubprocessFailed,
                      std::string("poll failed: ") + std::strerror(errno));
      return;
    }
    for (std::size_t i = 0; i < fds.size(); ++i) {
      if (fds[i].revents & (POLLIN | POLLHUP | POLLERR)) {
        handle_readable(owner[i]);
        if (!fatal_.is_ok()) return;
      }
    }
  }

  void handle_readable(std::size_t k) {
    WorkerSlot& s = slots_[k];
    if (!drain_into(s.proc.stdout_fd(), s.buf)) {
      handle_death(k);
      return;
    }
    std::string payload;
    while (s.alive && s.buf.next(&payload)) {
      WireMessage msg;
      if (!decode_message(payload, &msg)) {
        kill_worker(k, "malformed frame from worker " + std::to_string(k));
        return;
      }
      s.deadline_at_ns =
          monotonic_ns() +
          (s.ready ? config_.heartbeat_ms : config_.startup_ms) *
              1'000'000ull;
      switch (msg.type) {
        case WireType::kReady:
          s.ready = true;
          s.startup_failures = 0;
          s.backoff_ms = config_.backoff_base_ms;
          break;
        case WireType::kProgress:
          if (config_.progress != nullptr) {
            config_.progress->record(msg.contribution, msg.weight,
                                     msg.failed);
          }
          if (config_.on_sample) config_.on_sample();
          break;
        case WireType::kDone:
          handle_done(k, msg);
          break;
        case WireType::kMetrics: {
          MetricsSink shipped;
          if (shipped.deserialize(msg.blob)) {
            s.sink.merge(shipped);
          } else {
            log_line("worker " + std::to_string(k) +
                     " shipped an unreadable metrics payload; dropped");
          }
          break;
        }
        default:
          kill_worker(k, "unexpected message from worker " +
                             std::to_string(k));
          return;
      }
    }
    if (s.alive && s.buf.corrupt()) {
      kill_worker(k, "corrupt frame stream from worker " + std::to_string(k));
    }
  }

  void handle_done(std::size_t k, const WireMessage& msg) {
    WorkerSlot& s = slots_[k];
    if (s.shard < 0 || (*shards_)[s.shard].lo != msg.lo ||
        (*shards_)[s.shard].hi != msg.hi) {
      kill_worker(k, "worker " + std::to_string(k) +
                         " acknowledged a shard it was not assigned");
      return;
    }
    ShardState& sh = (*shards_)[s.shard];
    if (sh.state == ShardState::S::kAssigned) {
      sh.state = ShardState::S::kDone;
      --unresolved_;
      for (std::uint64_t i = sh.lo; i < sh.hi; ++i) (*present_)[i] = 1;
    }
    s.shard = -1;
  }

  void kill_worker(std::size_t k, const std::string& reason) {
    log_line(reason + "; killing worker " + std::to_string(k));
    slots_[k].proc.kill(SIGKILL);
    handle_death(k);
  }

  void handle_death(std::size_t k) {
    WorkerSlot& s = slots_[k];
    s.proc.close_pipes();
    const Subprocess::ExitStatus st = s.proc.wait();
    const bool clean = !st.signaled && st.exit_code == 0 && s.shutdown_sent;
    const bool storage_full =
        !st.signaled && st.exit_code == kExitResumableStop;
    s.alive = false;
    s.proc = Subprocess();

    // Harvest the dead worker's journal *before* touching its assignment:
    // a shard can be fully journaled with its DONE frame lost in the pipe,
    // and reassigning it would make two files cover the same samples.
    const Status harvested = harvest(k);
    if (!harvested.is_ok()) {
      fatal_ = harvested;
      return;
    }

    if (s.shard >= 0 && storage_full) {
      // The worker stopped itself because the journal device is full or
      // failing — not the shard's fault. Leave it pending with no attempts
      // charge so a post-resume run (with space freed) retries it instead
      // of quarantining it.
      ShardState& sh = (*shards_)[s.shard];
      if (sh.state == ShardState::S::kAssigned) {
        sh.state = ShardState::S::kPending;
      }
      s.shard = -1;
    }
    if (s.shard >= 0) {
      ShardState& sh = (*shards_)[s.shard];
      if (sh.state == ShardState::S::kAssigned) {
        ++sh.attempts;
        if (sh.attempts >= config_.max_shard_attempts) {
          sh.state = ShardState::S::kQuarantined;
          --unresolved_;
          ++sup_->quarantined_shards;
          sup_->quarantined_samples += sh.hi - sh.lo;
          log_line("quarantining shard [" + std::to_string(sh.lo) + ", " +
                   std::to_string(sh.hi) + ") after " +
                   std::to_string(sh.attempts) + " worker crash(es)");
        } else {
          sh.state = ShardState::S::kPending;
        }
      }
      s.shard = -1;
    }

    if (clean) return;
    if (storage_full) {
      // Fleet-wide graceful stop: other workers finish (or likewise abort)
      // their in-flight shard and are shut down; nothing respawns. The run
      // ends as an interrupted, resumable campaign.
      s.ready = false;
      s.shutdown_sent = false;
      ++sup_->storage_full_stops;
      if (!stopping_) {
        stopping_ = true;
        log_line("worker " + std::to_string(k) +
                 " stopped: storage full/failing while journaling; "
                 "finishing in-flight shards and stopping for resume");
      }
      return;
    }
    log_line("worker " + std::to_string(k) + " died unexpectedly (" +
             (st.signaled ? "signal " + std::to_string(st.term_signal)
                          : "exit code " + std::to_string(st.exit_code)) +
             ")");
    const bool was_ready = s.ready;
    s.ready = false;
    s.shutdown_sent = false;
    if (!was_ready) {
      note_startup_failure(k);
    } else {
      schedule_respawn(k);
    }
  }

  /// Reads worker k's shard file and folds every journaled span into the
  /// presence bitmap; shards it now fully covers are resolved as done.
  Status harvest(std::size_t k) {
    Result<JournalShards> shards =
        JournalReader::read_shards(config_.dir, worker_journal_file(k));
    if (!shards.is_ok()) {
      // Died before creating its file: no progress to recover. Anything
      // else (corruption) poisons the final merge and is fatal now.
      if (shards.status().code() == ErrorCode::kJournalIoError) {
        return Status::ok();
      }
      return shards.status();
    }
    if (shards.value().meta.fingerprint != config_.fingerprint) {
      return Status(ErrorCode::kJournalCorrupt,
                    worker_journal_file(k) +
                        " carries a foreign campaign fingerprint");
    }
    for (const JournalSpan& span : shards.value().spans) {
      const std::uint64_t end =
          std::min<std::uint64_t>(span.end_index(), present_->size());
      for (std::uint64_t i = span.first_index; i < end; ++i) {
        (*present_)[i] = 1;
      }
    }
    for (ShardState& sh : *shards_) {
      if (sh.state != ShardState::S::kPending &&
          sh.state != ShardState::S::kAssigned) {
        continue;
      }
      bool covered = true;
      for (std::uint64_t i = sh.lo; i < sh.hi && covered; ++i) {
        covered = (*present_)[i] != 0;
      }
      if (covered) {
        sh.state = ShardState::S::kDone;
        --unresolved_;
      }
    }
    return Status::ok();
  }

  void enforce_deadlines() {
    const std::uint64_t now = monotonic_ns();
    for (std::size_t k = 0; k < slots_.size(); ++k) {
      if (!fatal_.is_ok()) return;
      WorkerSlot& s = slots_[k];
      if (!s.alive || now < s.deadline_at_ns) continue;
      kill_worker(k, "worker " + std::to_string(k) + " missed its " +
                         (s.ready ? "heartbeat" : "startup") + " deadline");
    }
  }

  const SupervisorConfig& config_;
  std::vector<ShardState>* shards_;
  std::vector<std::uint8_t>* present_;
  SupervisedResult* sup_;
  std::vector<WorkerSlot> slots_;
  std::size_t unresolved_ = 0;
  bool stopping_ = false;
  Status fatal_;
};

}  // namespace

CampaignSupervisor::CampaignSupervisor(const SsfEvaluator& evaluator,
                                       SupervisorConfig config)
    : evaluator_(&evaluator), config_(std::move(config)) {}

Result<SupervisedResult> CampaignSupervisor::run(Sampler& sampler, Rng& rng,
                                                 std::size_t n) const {
  std::vector<faultsim::FaultSample> samples;
  try {
    samples = evaluator_->draw_batch(sampler, rng, n);
  } catch (const StatusError& e) {
    return e.status();
  }
  return run_batch(std::move(samples));
}

Result<SupervisedResult> CampaignSupervisor::run_batch(
    std::vector<faultsim::FaultSample> samples) const {
  const std::size_t n = samples.size();
  if (config_.workers == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "supervisor requires at least one worker");
  }
  if (config_.shard_size == 0) {
    return Status(ErrorCode::kInvalidArgument,
                  "supervisor shard_size must be > 0");
  }
  if (config_.dir.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "supervisor requires a journal directory");
  }
  if (config_.worker_command.empty()) {
    return Status(ErrorCode::kInvalidArgument,
                  "supervisor requires a worker command");
  }
  // A worker dying mid-write must never SIGPIPE the supervisor.
  ::signal(SIGPIPE, SIG_IGN);

  std::error_code ec;
  std::filesystem::create_directories(config_.dir, ec);
  if (ec) {
    return Status(ErrorCode::kJournalIoError,
                  "cannot create journal directory " + config_.dir + ": " +
                      ec.message());
  }

  SupervisedResult sup;
  std::vector<std::uint8_t> present(n, 0);
  if (!config_.resume) {
    // A fresh campaign must not inherit stale shard files: workers append to
    // any file that carries the campaign fingerprint, which would duplicate
    // spans the moment the same campaign is re-run from scratch.
    std::filesystem::directory_iterator it(config_.dir, ec);
    if (!ec) {
      for (const auto& entry : it) {
        const std::string name = entry.path().filename().string();
        if (name.rfind("worker-", 0) == 0 &&
            name.size() > 10 &&
            name.compare(name.size() - 3, 3, ".fj") == 0) {
          std::filesystem::remove(entry.path(), ec);
          if (ec) {
            return Status(ErrorCode::kJournalIoError,
                          "cannot remove stale shard file " + name + ": " +
                              ec.message());
          }
        }
      }
    }
  } else {
    Result<MergedJournal> merged = JournalReader::merge_partial(
        config_.dir, worker_journal_pattern());
    if (merged.is_ok()) {
      if (merged.value().meta.fingerprint != config_.fingerprint ||
          merged.value().meta.total_samples != n) {
        return Status(ErrorCode::kJournalCorrupt,
                      "journal belongs to a different campaign (fingerprint "
                      "or sample count mismatch)");
      }
      present = std::move(merged.value().present);
    } else if (merged.status().code() != ErrorCode::kJournalIoError) {
      return merged.status();
    }
    // kJournalIoError = no shard files yet: resuming a campaign that never
    // started is just a fresh start.
  }

  // Work list: the missing index ranges, chopped to shard_size. No alignment
  // requirement — workers journal exactly the ranges they are assigned, so a
  // resume with a different shard size still fits together.
  std::vector<ShardState> shards;
  for (std::size_t i = 0; i < n;) {
    if (present[i] != 0) {
      ++i;
      continue;
    }
    std::size_t j = i;
    while (j < n && present[j] == 0 && j - i < config_.shard_size) ++j;
    ShardState sh;
    sh.lo = i;
    sh.hi = j;
    shards.push_back(sh);
    i = j;
  }

  if (!shards.empty()) {
    Fleet fleet(config_, &shards, &present, &sup);
    const Status ran = fleet.run();
    if (!ran.is_ok()) return ran;
    if (config_.metrics != nullptr) {
      for (const WorkerSlot& s : fleet.slots()) {
        config_.metrics->merge(s.sink);
      }
    }
  }

  // Assemble the campaign from disk — the journals are the single source of
  // truth for everything the workers evaluated.
  std::vector<SampleRecord> records(n);
  std::vector<std::uint8_t> have(n, 0);
  if (n > 0) {
    Result<MergedJournal> merged = JournalReader::merge_partial(
        config_.dir, worker_journal_pattern());
    if (merged.is_ok()) {
      if (merged.value().meta.fingerprint != config_.fingerprint ||
          merged.value().meta.total_samples != n) {
        return Status(ErrorCode::kJournalCorrupt,
                      "journal belongs to a different campaign (fingerprint "
                      "or sample count mismatch)");
      }
      records = std::move(merged.value().records);
      have = std::move(merged.value().present);
    } else if (!shards.empty() ||
               merged.status().code() != ErrorCode::kJournalIoError) {
      return merged.status();
    }
  }

  // Quarantined shards become kWorkerCrashed records synthesized from the
  // supervisor's own sample batch: the estimate stays well-defined over
  // completed samples and the crash cost is visible in failure_counts.
  for (const ShardState& sh : shards) {
    if (sh.state != ShardState::S::kQuarantined) continue;
    for (std::uint64_t i = sh.lo; i < sh.hi; ++i) {
      SampleRecord rec;
      rec.sample = samples[i];
      rec.path = OutcomePath::kFailed;
      rec.fail_code = ErrorCode::kWorkerCrashed;
      rec.fail_reason = "worker process crashed evaluating shard [" +
                        std::to_string(sh.lo) + ", " +
                        std::to_string(sh.hi) + ") " +
                        std::to_string(sh.attempts) + " time(s); quarantined";
      records[i] = std::move(rec);
      have[i] = 1;
    }
  }

  // An interrupted (graceful-stop) campaign reduces the contiguous prefix,
  // exactly like the single-process engine; later journaled spans stay on
  // disk for the resume.
  std::size_t len = 0;
  while (len < n && have[len] != 0) ++len;
  for (std::size_t i = 0; i < len; ++i) {
    if (!sample_matches(records[i].sample, samples[i])) {
      return Status(ErrorCode::kJournalCorrupt,
                    "journaled sample " + std::to_string(i) +
                        " does not match the re-drawn sample stream");
    }
  }
  records.resize(len);
  SsfResult result = evaluator_->reduce_records(std::move(records));
  result.interrupted = len < n;
  sup.result = std::move(result);

  if (config_.metrics != nullptr) {
    config_.metrics->add_counter("supervisor.restarts", sup.restarts);
    config_.metrics->add_counter("supervisor.quarantined_shards",
                                 sup.quarantined_shards);
    config_.metrics->add_counter("supervisor.quarantined_samples",
                                 sup.quarantined_samples);
    config_.metrics->add_counter("supervisor.storage_full_stops",
                                 sup.storage_full_stops);
    config_.metrics->set_gauge("supervisor.workers",
                               static_cast<double>(config_.workers));
  }
  return sup;
}

}  // namespace fav::mc
