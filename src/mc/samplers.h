// Sampling strategies compared in the paper's Fig. 9:
//  * RandomSampler     — draws directly from the holistic model f_{T,P},
//  * ConeSampler       — restricts the spatial parameter to the responding
//                        signal's fanin/fanout cones (Observation 1 only),
//  * ImportanceSampler — the full pre-characterization-driven g_{T,P}
//                        (Observations 1+2+3).
// Every sampler returns FaultSamples carrying the importance weight f/g so
// the downstream estimator is strategy-agnostic.
#pragma once

#include <memory>
#include <string>

#include "faultsim/attack_model.h"
#include "faultsim/clock_glitch.h"
#include "faultsim/voltage_glitch.h"
#include "layout/placement.h"
#include "netlist/cones.h"
#include "precharac/sampling_model.h"

namespace fav::mc {

class Sampler {
 public:
  virtual ~Sampler() = default;
  virtual faultsim::FaultSample draw(Rng& rng) = 0;
  virtual const std::string& name() const = 0;
};

/// Plain Monte Carlo over f_{T,P}.
class RandomSampler final : public Sampler {
 public:
  explicit RandomSampler(const faultsim::AttackModel& attack);
  faultsim::FaultSample draw(Rng& rng) override;
  const std::string& name() const override { return name_; }

 private:
  const faultsim::AttackModel* attack_;
  std::string name_ = "random";
};

/// Uniform sampling restricted to the responding-signal cones: a candidate
/// center stays in frame t's support iff its radiated spot covers a gate of
/// frame t or a register of frame t-1 (the cells whose fault at Te = Tt - t
/// can influence the responding signal).
class ConeSampler final : public Sampler {
 public:
  ConeSampler(const faultsim::AttackModel& attack,
              const netlist::UnrolledCone& cone,
              const layout::Placement& placement);
  faultsim::FaultSample draw(Rng& rng) override;
  const std::string& name() const override { return name_; }

 private:
  const faultsim::AttackModel* attack_;
  std::string name_ = "fanin_cone";
  struct Frame {
    int t = 0;
    std::vector<netlist::NodeId> centers;
  };
  std::vector<Frame> frames_;  // frames with non-empty support only
};

///// Plain Monte Carlo over the clock-glitch holistic model f_{T,P}: t and
/// depth uniform over the model's grid, weight 1. Construction validates the
/// model against the benchmark's target cycle — a timing range past Tt has
/// no cycle to glitch and is rejected up front rather than diluted into the
/// estimate as always-masked samples.
class GlitchSampler final : public Sampler {
 public:
  GlitchSampler(const faultsim::ClockGlitchAttackModel& model,
                std::uint64_t target_cycle);
  faultsim::FaultSample draw(Rng& rng) override;
  const std::string& name() const override { return name_; }

 private:
  faultsim::ClockGlitchAttackModel model_;  // by value: cheap, caller-decoupled
  std::string name_ = "glitch-uniform";
};

/// Plain Monte Carlo over the voltage-glitch holistic model: t and droop
/// uniform over the model's grid, weight 1 (the droop rides in
/// FaultSample::depth). Same up-front target-cycle validation as
/// GlitchSampler.
class VoltageGlitchSampler final : public Sampler {
 public:
  VoltageGlitchSampler(const faultsim::VoltageGlitchAttackModel& model,
                       std::uint64_t target_cycle);
  faultsim::FaultSample draw(Rng& rng) override;
  const std::string& name() const override { return name_; }

 private:
  faultsim::VoltageGlitchAttackModel model_;  // by value, caller-decoupled
  std::string name_ = "voltage-uniform";
};

/// The full importance-sampling strategy of Section 4.
class ImportanceSampler final : public Sampler {
 public:
  explicit ImportanceSampler(const precharac::SamplingModel& model);
  faultsim::FaultSample draw(Rng& rng) override;
  const std::string& name() const override { return name_; }

 private:
  const precharac::SamplingModel* model_;
  std::string name_ = "importance";
};

}  // namespace fav::mc
