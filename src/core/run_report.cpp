#include "core/run_report.h"

#include <cmath>
#include <cstdio>
#include <ostream>

#include "util/check.h"
#include "util/io.h"

namespace fav::core {

std::string json_escape(const std::string& s) { return io::json_escape(s); }

void write_run_report(std::ostream& out, const RunReportInputs& in) {
  FAV_CHECK(in.result != nullptr);
  FAV_CHECK(in.metrics != nullptr);
  const mc::SsfResult& res = *in.result;
  auto num = [&out](double v) {
    if (std::isfinite(v)) {
      char buf[64];
      std::snprintf(buf, sizeof(buf), "%.17g", v);
      out << buf;
    } else {
      out << "null";
    }
  };
  auto str = [&out](const std::string& s) {
    out << '"' << json_escape(s) << '"';
  };
  const double se = res.stats.standard_error();
  out << "{\n"
      << "  \"schema\": \"fav.run_report.v1\",\n"
      << "  \"benchmark\": ";
  str(in.benchmark);
  out << ",\n  \"technique\": ";
  str(in.technique);
  out << ",\n  \"strategy\": ";
  str(in.strategy);
  out << ",\n  \"mode\": ";
  str(in.mode);
  out << ",\n  \"samples\": " << in.samples << ",\n"
      << "  \"evaluated\": " << res.evaluated << ",\n"
      << "  \"interrupted\": " << (res.interrupted ? "true" : "false") << ",\n"
      << "  \"fault_space\": {\"size\": " << res.fault_space_size
      << ", \"evaluated\": " << res.evaluated << ", \"coverage\": ";
  num(res.coverage());
  out << "},\n"
      << "  \"seed\": " << in.seed << ",\n"
      << "  \"threads\": " << in.threads << ",\n"
      << "  \"batch_lanes\": " << in.batch_lanes << ",\n"
      << "  \"supervise\": " << in.supervise << ",\n";
  if (in.supervised) {
    out << "  \"supervisor\": {\"restarts\": " << in.restarts
        << ", \"quarantined_shards\": " << in.quarantined_shards
        << ", \"quarantined_samples\": " << in.quarantined_samples
        << ", \"storage_full_stops\": " << in.storage_full_stops << "},\n";
  }
  out << "  \"precharac_cache\": {\"enabled\": "
      << (in.cache.enabled ? "true" : "false") << ", \"path\": ";
  str(in.cache.path);
  out << ", \"outcome\": ";
  str(in.cache.outcome);
  out << ", \"detail\": ";
  str(in.cache.detail);
  out << ", \"stored\": " << (in.cache.stored ? "true" : "false") << "},\n";
  out << "  \"elapsed_s\": ";
  num(in.elapsed_s);
  out << ",\n  \"samples_per_s\": ";
  num(in.elapsed_s > 0.0
          ? static_cast<double>(res.evaluated) / in.elapsed_s
          : 0.0);
  out << ",\n  \"ssf\": ";
  num(res.ssf());
  out << ",\n  \"std_error\": ";
  num(se);
  out << ",\n  \"ci95_half_width\": ";
  num(1.96 * se);
  out << ",\n  \"variance\": ";
  num(res.sample_variance());
  out << ",\n  \"ess\": ";
  num(res.effective_sample_size());
  out << ",\n  \"successes\": " << res.successes << ",\n"
      << "  \"paths\": {\"masked\": " << res.masked
      << ", \"analytical\": " << res.analytical << ", \"rtl\": " << res.rtl
      << ", \"failed\": " << res.failed << "},\n"
      << "  \"retried\": " << res.retried << ",\n"
      << "  \"failed_weight_fraction\": ";
  num(res.failed_weight_fraction());
  out << ",\n  \"failure_counts\": {";
  bool first_fail = true;
  for (const auto& [code, count] : res.failure_counts) {
    if (!first_fail) out << ", ";
    first_fail = false;
    str(error_code_name(code));
    out << ": " << count;
  }
  out << "},\n  \"metrics\": ";
  in.metrics->write_json(out);
  out << "\n}\n";
}

}  // namespace fav::core
