#include "core/framework.h"

#include <algorithm>
#include <cstdio>

#include "util/io.h"

namespace fav::core {

using faultsim::AttackModel;
using netlist::NodeId;

namespace {

/// Throws before any expensive elaboration when the config is structurally
/// invalid; used in the config_ member initializer so it runs first.
FrameworkConfig validated(const FrameworkConfig& config) {
  const Status status = config.validate();
  if (!status.is_ok()) throw StatusError(status);
  return config;
}

/// Belt-and-braces shape guard on a checksum-clean artifact bundle: the
/// fingerprint already covers every dimension below, so a mismatch here is
/// damage the checksums missed (or a fingerprint collision), classified as
/// corruption. Returns an empty string when the bundle fits this netlist.
std::string bundle_shape_error(const precharac::PrecharacBundle& b,
                               NodeId responding_signal, int fanin_depth,
                               int fanout_depth, std::size_t node_count,
                               std::size_t total_bits) {
  if (b.responding_signal != responding_signal) {
    return "responding-signal mismatch";
  }
  if (b.fanin_frames.size() != static_cast<std::size_t>(fanin_depth) + 1 ||
      b.fanout_frames.size() != static_cast<std::size_t>(fanout_depth)) {
    return "cone frame count mismatch";
  }
  for (const auto* frames : {&b.fanin_frames, &b.fanout_frames}) {
    for (const netlist::ConeFrame& f : *frames) {
      for (const NodeId g : f.gates) {
        if (g >= node_count) return "cone gate id out of range";
      }
      for (const NodeId r : f.registers) {
        if (r >= node_count) return "cone register id out of range";
      }
    }
  }
  if (b.signatures.size() != node_count) return "signature count mismatch";
  for (const BitVector& sig : b.signatures) {
    if (sig.size() != b.signature_cycles) return "signature length mismatch";
  }
  if (b.bits.size() != total_bits || b.characterized.size() != total_bits ||
      b.memory_bit_potency.size() != total_bits) {
    return "register-map size mismatch";
  }
  return "";
}

}  // namespace

std::uint64_t campaign_fingerprint(const CampaignKey& key) {
  const std::string id =
      key.benchmark + "|" + key.technique + "|" + key.strategy + "|" +
      std::to_string(key.seed) + "|" + std::to_string(key.samples) + "|" +
      std::to_string(key.t_range) + "|" + std::to_string(key.radius) + "|" +
      std::to_string(key.cycle_budget);
  std::uint64_t h = 0xCBF29CE484222325ull;
  for (const char c : id) {
    h ^= static_cast<unsigned char>(c);
    h *= 0x100000001B3ull;
  }
  return h;
}

Status FrameworkConfig::validate() const {
  auto invalid = [](const std::string& what) {
    return Status(ErrorCode::kInvalidArgument, "FrameworkConfig: " + what);
  };
  if (technique != "radiation" && technique != "clock-glitch" &&
      technique != "voltage-glitch") {
    return invalid(
        "technique must be \"radiation\", \"clock-glitch\" or "
        "\"voltage-glitch\", got \"" +
        technique + "\"");
  }
  if (mode != "sampled" && mode != "exhaustive") {
    return invalid("mode must be \"sampled\" or \"exhaustive\", got \"" +
                   mode + "\"");
  }
  if (checkpoint_interval == 0) {
    return invalid("checkpoint_interval must be > 0");
  }
  if (cone_fanin_depth <= 0 || cone_fanout_depth <= 0) {
    return invalid("cone depths must be positive");
  }
  if (precharac_cycles == 0) return invalid("precharac_cycles must be > 0");
  if (evaluator.trace_stride == 0) {
    return invalid("evaluator.trace_stride must be > 0");
  }
  return Status::ok();
}

void FaultAttackEvaluator::log_event(const std::string& message) const {
  if (config_.log) {
    config_.log(message);
  } else {
    std::fprintf(stderr, "fav: %s\n", message.c_str());
  }
}

FaultAttackEvaluator::FaultAttackEvaluator(soc::SecurityBenchmark bench,
                                           const FrameworkConfig& config)
    : config_(validated(config)),
      bench_(std::move(bench)),
      soc_(),
      placement_(soc_.netlist()),
      synthetic_workload_(soc::make_synthetic_workload()) {
  // The benchmark golden run is needed at evaluation time and is therefore
  // never cached; the synthetic golden run only feeds pre-characterization
  // and is built inside compute_precharac() (skipped on a cache hit).
  {
    ScopeTimer timer(&metrics_, "precharac.golden_runs_ns");
    golden_ = std::make_unique<rtl::GoldenRun>(
        bench_.program, bench_.max_cycles, config.checkpoint_interval);
  }

  // Pre-characterization (Section 4): load the persistent artifact when one
  // is configured and valid, otherwise recompute (and rewrite the artifact).
  // Either path installs bitwise-identical state — the cache can cost time,
  // never correctness.
  cache_report_.enabled = !config_.precharac_cache_path.empty();
  cache_report_.path = config_.precharac_cache_path;
  io::FileLock lock;  // held (if taken) until construction completes
  bool loaded = false;
  bool must_save = false;
  std::uint64_t fingerprint = 0;
  if (cache_report_.enabled) {
    fingerprint = precharac::precharac_fingerprint(precharac_key());
    loaded = try_load_precharac(fingerprint, /*after_wait=*/false);
    if (!loaded) {
      // Cold start: serialize concurrent elaborators on an advisory lock so
      // exactly one computes while the rest wait and then load its artifact
      // (the double-checked retry below). A lock timeout degrades to an
      // unlocked redundant elaboration — atomic rewrite keeps that safe.
      ScopeTimer wait_timer(&metrics_, "precharac.cache_lock_wait_ns");
      const Status locked =
          lock.acquire(config_.precharac_cache_path + ".lock",
                       config_.precharac_cache_lock_timeout_ms);
      wait_timer.stop();
      if (locked.is_ok()) {
        loaded = try_load_precharac(fingerprint, /*after_wait=*/true);
      } else {
        metrics_.add_counter("precharac.cache_lock_timeouts");
        log_event("precharac cache: elaborating without the lock (" +
                  locked.to_string() + ")");
      }
      must_save = !loaded;
    }
  }
  if (!loaded) {
    compute_precharac();
    compute_potency();
  }
  count_potency();

  ScopeTimer injector_timer(&metrics_, "precharac.injector_ns");
  injector_ = std::make_unique<faultsim::InjectionSimulator>(
      soc_.netlist(), config.timing, config.transient);
  if (config.technique == "clock-glitch") {
    glitch_ = std::make_unique<faultsim::ClockGlitchSimulator>(soc_.netlist(),
                                                               config.timing);
    technique_ = std::make_unique<faultsim::ClockGlitchTechnique>(*glitch_);
  } else if (config.technique == "voltage-glitch") {
    voltage_ = std::make_unique<faultsim::VoltageGlitchSimulator>(
        soc_.netlist(), config.timing);
    technique_ = std::make_unique<faultsim::VoltageGlitchTechnique>(*voltage_);
  } else {
    technique_ =
        std::make_unique<faultsim::RadiationTechnique>(placement_, *injector_);
  }
  evaluator_ = std::make_unique<mc::SsfEvaluator>(
      soc_, *technique_, bench_, *golden_, charac_.get(), config.evaluator);
  injector_timer.stop();

  if (must_save) save_precharac(fingerprint);
}

precharac::PrecharacKey FaultAttackEvaluator::precharac_key() const {
  precharac::PrecharacKey key;
  key.benchmark = bench_.name;
  key.benchmark_cycles = bench_.max_cycles;
  key.cone_fanin_depth = config_.cone_fanin_depth;
  key.cone_fanout_depth = config_.cone_fanout_depth;
  key.precharac_cycles = config_.precharac_cycles;
  key.characterization = config_.characterization;
  key.node_count = soc_.netlist().node_count();
  key.total_bits =
      static_cast<std::uint64_t>(rtl::Machine::reg_map().total_bits());
  return key;
}

bool FaultAttackEvaluator::try_load_precharac(std::uint64_t fingerprint,
                                              bool after_wait) {
  ScopeTimer timer(&metrics_, "precharac.cache_load_ns");
  precharac::ArtifactLoad load =
      precharac::load_artifact(config_.precharac_cache_path, fingerprint);
  if (load.outcome == precharac::ArtifactOutcome::kHit) {
    const std::string shape = bundle_shape_error(
        load.bundle, soc_.netlist().find_or_throw("mpu_viol"),
        config_.cone_fanin_depth, config_.cone_fanout_depth,
        soc_.netlist().node_count(),
        static_cast<std::size_t>(rtl::Machine::reg_map().total_bits()));
    if (!shape.empty()) {
      load.outcome = precharac::ArtifactOutcome::kCorrupt;
      load.detail = shape;
    }
  }
  const char* name = precharac::artifact_outcome_name(load.outcome);
  const bool hit = load.outcome == precharac::ArtifactOutcome::kHit;
  if (!after_wait) {
    // The decisive first-attempt classification: exactly one of the four
    // outcome counters fires per construction.
    metrics_.add_counter(std::string("precharac.cache_") + name);
    cache_report_.outcome = name;
    cache_report_.detail = load.detail;
    if (!hit) {
      log_event("precharac cache " + std::string(name) + ": " + load.detail +
                "; recomputing");
    }
  } else if (hit) {
    // A peer elaborated while this process waited on the lock.
    metrics_.add_counter("precharac.cache_hit_after_wait");
    cache_report_.outcome = name;
    cache_report_.detail = "loaded after waiting on the elaboration lock";
  }
  if (!hit) return false;
  cone_ = std::make_unique<netlist::UnrolledCone>(
      load.bundle.responding_signal, std::move(load.bundle.fanin_frames),
      std::move(load.bundle.fanout_frames));
  signatures_ = std::make_unique<precharac::SignatureTrace>(
      load.bundle.signature_cycles, std::move(load.bundle.signatures));
  charac_ = std::make_unique<precharac::RegisterCharacterization>(
      config_.characterization, std::move(load.bundle.bits),
      std::move(load.bundle.characterized));
  config_.sampling.memory_bit_potency =
      std::move(load.bundle.memory_bit_potency);
  return true;
}

void FaultAttackEvaluator::compute_precharac() {
  // Each phase is timed into metrics_ — the phases run at most once per
  // framework, so the report shows where construction cost goes.
  {
    ScopeTimer timer(&metrics_, "precharac.golden_runs_ns");
    synthetic_golden_ = std::make_unique<rtl::GoldenRun>(
        synthetic_workload_, config_.precharac_cycles,
        config_.checkpoint_interval);
  }
  {
    ScopeTimer timer(&metrics_, "precharac.cone_ns");
    cone_ = std::make_unique<netlist::UnrolledCone>(
        soc_.netlist(), soc_.netlist().find_or_throw("mpu_viol"),
        config_.cone_fanin_depth, config_.cone_fanout_depth);
  }
  {
    ScopeTimer timer(&metrics_, "precharac.signatures_ns");
    signatures_ = std::make_unique<precharac::SignatureTrace>(
        soc_, synthetic_workload_, config_.precharac_cycles);
  }
  {
    ScopeTimer timer(&metrics_, "precharac.characterization_ns");
    charac_ = std::make_unique<precharac::RegisterCharacterization>(
        *synthetic_golden_, config_.characterization);
  }
}

void FaultAttackEvaluator::compute_potency() {
  ScopeTimer potency_timer(&metrics_, "precharac.potency_ns");

  // Potency of memory-type registers, from the analytical evaluator; it
  // steers the mixed importance-sampling strategy.
  //  * single-bit potency (score 1.0): flipping this bit alone enables the
  //    attack (e.g. a permission-grant or region-limit bit),
  //  * group potency (score 0.3): wholesale corruption of an MPU region's
  //    configuration enables the attack — the garbage-latch mechanism, where
  //    one transient on the config-write decode latches an attacker-chosen
  //    value into a whole region register.
  const rtl::RegisterMap& map = rtl::Machine::reg_map();
  const mc::AnalyticalEvaluator analytical(bench_, *golden_);
  const std::uint64_t tt = analytical.target_cycle();
  auto& potency = config_.sampling.memory_bit_potency;
  potency.assign(static_cast<std::size_t>(map.total_bits()), 0.0);
  // Candidates: empirically memory-type bits plus structurally write-once
  // (config-like) bits — a configuration flip can be persistent and
  // attack-enabling even when its characterization shows contamination
  // (e.g. the MPU enable bit suppresses the sticky flag).
  for (int bit = 0; bit < map.total_bits(); ++bit) {
    const bool persistent = charac_->is_memory_type(bit) ||
                            map.field(map.locate(bit).first).config_like;
    if (!persistent) continue;
    rtl::ArchState faulty = golden_->state_at(tt);
    map.flip_bit(faulty, bit);
    const auto verdict = analytical.evaluate(faulty, tt);
    if (verdict.has_value() && *verdict) {
      potency[static_cast<std::size_t>(bit)] = 1.0;
    }
  }
  for (int k = 0; k < rtl::kMpuRegionCount; ++k) {
    rtl::ArchState faulty = golden_->state_at(tt);
    faulty.mpu[static_cast<std::size_t>(k)] = {
        0x0000, 0xFFFF, rtl::kPermRead | rtl::kPermWrite | rtl::kPermEnable};
    const auto verdict = analytical.evaluate(faulty, tt);
    if (!(verdict.has_value() && *verdict)) continue;
    const std::string prefix = "mpu" + std::to_string(k) + "_";
    for (const char* suffix : {"base", "limit", "perm"}) {
      const auto& field = map.field(map.field_index(prefix + suffix));
      for (int b = 0; b < field.width; ++b) {
        auto& p = potency[static_cast<std::size_t>(field.offset + b)];
        p = std::max(p, 0.3);
      }
    }
  }
}

void FaultAttackEvaluator::count_potency() {
  std::size_t potent_bits = 0, boosted_bits = 0;
  for (const double p : config_.sampling.memory_bit_potency) {
    if (p >= 1.0) ++potent_bits;
    else if (p > 0.0) ++boosted_bits;
  }
  metrics_.add_counter("precharac.potent_bits", potent_bits);
  metrics_.add_counter("precharac.group_boosted_bits", boosted_bits);
}

void FaultAttackEvaluator::save_precharac(std::uint64_t fingerprint) {
  ScopeTimer timer(&metrics_, "precharac.cache_save_ns");
  precharac::PrecharacBundle b;
  b.responding_signal = cone_->responding_signal();
  b.fanin_frames = cone_->fanin_frames();
  b.fanout_frames = cone_->fanout_frames();
  b.signature_cycles = signatures_->cycles();
  const NodeId node_count = soc_.netlist().node_count();
  b.signatures.reserve(node_count);
  for (NodeId id = 0; id < node_count; ++id) {
    b.signatures.push_back(signatures_->signature(id));
  }
  b.charac_config = config_.characterization;
  b.bits = charac_->raw_bits();
  b.characterized = charac_->raw_done();
  b.memory_bit_potency = config_.sampling.memory_bit_potency;
  const std::string context = "fav precharac artifact | benchmark=" +
                              bench_.name + " | fingerprint=" +
                              std::to_string(fingerprint);
  const Status saved = precharac::save_artifact(
      config_.precharac_cache_path, fingerprint, context, b);
  if (!saved.is_ok()) {
    // A failed artifact write never fails the campaign: the bundle is live
    // in memory, only the next cold start pays for the recompute.
    metrics_.add_counter("precharac.cache_save_failures");
    log_event("precharac cache: artifact write failed (" + saved.to_string() +
              "); continuing without the cache");
    return;
  }
  metrics_.add_counter("precharac.cache_saved");
  cache_report_.stored = true;
  log_event("precharac cache: wrote " + config_.precharac_cache_path);
}

AttackModel FaultAttackEvaluator::chip_attack_model(double radius,
                                                    int t_range) const {
  FAV_ENSURE(t_range >= 1);
  AttackModel a;
  a.t_min = 0;
  a.t_max = t_range - 1;
  a.candidate_centers = placement_.placed_nodes();
  a.radii = {radius};
  return a;
}

AttackModel FaultAttackEvaluator::subblock_attack_model(double radius,
                                                        int t_range) const {
  FAV_ENSURE(t_range >= 1);
  AttackModel a;
  a.t_min = 0;
  a.t_max = t_range - 1;
  a.radii = {radius};
  // Candidate support: every cell appearing in any extracted cone frame —
  // the attacker aims the spot at the security logic's neighbourhood.
  std::vector<char> in(soc_.netlist().node_count(), 0);
  auto absorb = [&](const netlist::ConeFrame& f) {
    for (const NodeId g : f.gates) in[g] = 1;
    for (const NodeId r : f.registers) in[r] = 1;
  };
  for (const auto& f : cone_->fanin_frames()) absorb(f);
  for (const auto& f : cone_->fanout_frames()) absorb(f);
  for (NodeId id = 0; id < soc_.netlist().node_count(); ++id) {
    if (in[id] && placement_.is_placed(id)) a.candidate_centers.push_back(id);
  }
  FAV_ENSURE_MSG(!a.candidate_centers.empty(), "cone support is empty");
  return a;
}

const faultsim::ClockGlitchSimulator& FaultAttackEvaluator::glitch_simulator()
    const {
  FAV_ENSURE_MSG(glitch_ != nullptr,
                 "glitch_simulator() requires technique \"clock-glitch\" "
                 "(configured: \""
                     << config_.technique << "\")");
  return *glitch_;
}

faultsim::ClockGlitchAttackModel FaultAttackEvaluator::glitch_attack_model(
    int t_range) const {
  FAV_ENSURE(t_range >= 1);
  faultsim::ClockGlitchAttackModel m;
  m.t_min = 0;
  const std::uint64_t tt = target_cycle();
  m.t_max = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(t_range - 1), tt));
  return m;
}

std::unique_ptr<mc::Sampler> FaultAttackEvaluator::make_glitch_sampler(
    const faultsim::ClockGlitchAttackModel& model) const {
  return std::make_unique<mc::GlitchSampler>(model, target_cycle());
}

const faultsim::VoltageGlitchSimulator& FaultAttackEvaluator::voltage_simulator()
    const {
  FAV_ENSURE_MSG(voltage_ != nullptr,
                 "voltage_simulator() requires technique \"voltage-glitch\" "
                 "(configured: \""
                     << config_.technique << "\")");
  return *voltage_;
}

faultsim::VoltageGlitchAttackModel FaultAttackEvaluator::voltage_attack_model(
    int t_range) const {
  FAV_ENSURE(t_range >= 1);
  faultsim::VoltageGlitchAttackModel m;
  m.t_min = 0;
  const std::uint64_t tt = target_cycle();
  m.t_max = static_cast<int>(std::min<std::uint64_t>(
      static_cast<std::uint64_t>(t_range - 1), tt));
  return m;
}

std::unique_ptr<mc::Sampler> FaultAttackEvaluator::make_voltage_sampler(
    const faultsim::VoltageGlitchAttackModel& model) const {
  return std::make_unique<mc::VoltageGlitchSampler>(model, target_cycle());
}

std::uint64_t FaultAttackEvaluator::bind_exhaustive_space(int t_range,
                                                          double radius) const {
  // const_cast-free: technique_ is a (const) unique_ptr to a non-const
  // technique, and binding happens before any evaluation is in flight.
  if (config_.technique == "clock-glitch") {
    auto* t = dynamic_cast<faultsim::ClockGlitchTechnique*>(technique_.get());
    FAV_CHECK(t != nullptr);
    t->bind_space(glitch_attack_model(t_range));
  } else if (config_.technique == "voltage-glitch") {
    auto* t = dynamic_cast<faultsim::VoltageGlitchTechnique*>(technique_.get());
    FAV_CHECK(t != nullptr);
    t->bind_space(voltage_attack_model(t_range));
  } else {
    auto* t = dynamic_cast<faultsim::RadiationTechnique*>(technique_.get());
    FAV_CHECK(t != nullptr);
    t->bind_space(subblock_attack_model(radius, t_range));
  }
  return technique_->space_size();
}

std::unique_ptr<mc::Sampler> FaultAttackEvaluator::make_random_sampler(
    const AttackModel& attack) const {
  attacks_.push_back(std::make_unique<AttackModel>(attack));
  return std::make_unique<mc::RandomSampler>(*attacks_.back());
}

std::unique_ptr<mc::Sampler> FaultAttackEvaluator::make_cone_sampler(
    const AttackModel& attack) const {
  attacks_.push_back(std::make_unique<AttackModel>(attack));
  return std::make_unique<mc::ConeSampler>(*attacks_.back(), *cone_,
                                           placement_);
}

precharac::SamplingModel FaultAttackEvaluator::make_sampling_model(
    const AttackModel& attack) const {
  attacks_.push_back(std::make_unique<AttackModel>(attack));
  return precharac::SamplingModel(soc_, placement_, *cone_, *signatures_,
                                  *charac_, *attacks_.back(),
                                  config_.sampling);
}

precharac::SamplingParams FaultAttackEvaluator::sampling_params_for(
    const AttackModel& attack) const {
  precharac::SamplingParams params = config_.sampling;
  // Enumerate the deterministic memory-type subspace: for every candidate
  // spot, the *direct* register upsets are fixed (independent of t and of
  // the strike instant), so the analytical evaluator can decide their
  // outcome outright. Spots whose direct flips provably enable the attack
  // receive a dominant sampling boost.
  const rtl::RegisterMap& map = rtl::Machine::reg_map();
  const mc::AnalyticalEvaluator analytical(bench_, *golden_);
  const std::uint64_t tt = analytical.target_cycle();
  const rtl::ArchState base_state = golden_->state_at(tt);
  const double max_radius =
      *std::max_element(attack.radii.begin(), attack.radii.end());
  params.center_boost.assign(soc_.netlist().node_count(), 0.0);
  constexpr double kDirectHitBoost = 3.0e3;
  std::vector<netlist::NodeId> spot;  // query buffer reused across centers
  for (const netlist::NodeId c : attack.candidate_centers) {
    // Direct upsets of the *persistent* covered registers (memory-type or
    // write-once config): their combined outcome is decidable analytically.
    // Covered computation registers add transient noise the verdict cannot
    // see — the boost is steering, not a proof, so that is acceptable.
    std::vector<int> flips;
    placement_.nodes_within(c, max_radius, spot);
    for (const netlist::NodeId g : spot) {
      if (!soc_.netlist().is_dff(g)) continue;
      const int bit = soc_.flat_bit_for_dff(g);
      if (charac_->is_memory_type(bit) ||
          map.field(map.locate(bit).first).config_like) {
        flips.push_back(bit);
      }
    }
    if (flips.empty()) continue;
    rtl::ArchState faulty = base_state;
    for (const int bit : flips) map.flip_bit(faulty, bit);
    const auto verdict = analytical.evaluate(faulty, tt);
    if (verdict.has_value() && *verdict) {
      params.center_boost[c] = kDirectHitBoost;
    }
  }
  return params;
}

AdaptiveRunResult FaultAttackEvaluator::run_adaptive(
    const AttackModel& attack, mc::Sampler& pilot_sampler, Rng& rng,
    std::size_t pilot_n, std::size_t refine_n,
    const mc::AdaptiveConfig& adaptive) const {
  FAV_ENSURE_MSG(config_.evaluator.keep_records,
                "adaptive refit needs pilot records (keep_records)");
  FAV_ENSURE_MSG(technique_->kind() == faultsim::TechniqueKind::kRadiation,
                 "run_adaptive samples the radiation parameter space; use "
                 "run_adaptive_glitch for the clock-glitch technique");
  AdaptiveRunResult out;
  mc::Sampler* pilot = &pilot_sampler;
  std::unique_ptr<mc::Sampler> fallback_pilot;
  try {
    out.pilot = evaluator_->run(*pilot, rng, pilot_n);
  } catch (const std::exception& e) {
    // Pilot stage failed (a sampler that throws while drawing): degrade to
    // the cone → random chain instead of aborting the whole campaign.
    SamplerSelection sel = make_sampler_with_fallback(attack, "cone");
    out.downgrade_reason = "pilot sampler '" + pilot_sampler.name() +
                           "' failed (" + e.what() + "); downgraded to '" +
                           sel.actual + "'";
    metrics_.add_counter("adaptive.pilot_downgrades");
    log_event("run_adaptive: " + out.downgrade_reason);
    fallback_pilot = std::move(sel.sampler);
    pilot = fallback_pilot.get();
    out.pilot = evaluator_->run(*pilot, rng, pilot_n);
  }
  if (out.pilot.successes == 0) {
    // Nothing to adapt to; spend the refinement budget on the pilot sampler.
    out.refined = evaluator_->run(*pilot, rng, refine_n);
    return out;
  }
  try {
    mc::AdaptiveImportanceSampler refit(attack, out.pilot, adaptive);
    out.refined = evaluator_->run(refit, rng, refine_n);
    out.adapted = true;
  } catch (const std::exception& e) {
    // Refit construction failed: spend the refinement budget on the pilot
    // sampler (the rng stream is untouched by the failed construction, so
    // this fallback is deterministic).
    out.downgrade_reason = std::string("adaptive refit failed (") + e.what() +
                           "); refined stage uses the pilot sampler";
    metrics_.add_counter("adaptive.refit_downgrades");
    log_event("run_adaptive: " + out.downgrade_reason);
    out.refined = evaluator_->run(*pilot, rng, refine_n);
  }
  return out;
}

AdaptiveRunResult FaultAttackEvaluator::run_adaptive_glitch(
    const faultsim::ClockGlitchAttackModel& model, Rng& rng,
    std::size_t pilot_n, std::size_t refine_n,
    const mc::AdaptiveConfig& adaptive) const {
  FAV_ENSURE_MSG(config_.evaluator.keep_records,
                "adaptive refit needs pilot records (keep_records)");
  FAV_ENSURE_MSG(technique_->kind() == faultsim::TechniqueKind::kClockGlitch,
                 "run_adaptive_glitch requires technique \"clock-glitch\"");
  AdaptiveRunResult out;
  mc::GlitchSampler pilot(model, target_cycle());
  out.pilot = evaluator_->run(pilot, rng, pilot_n);
  if (out.pilot.successes == 0) {
    // Nothing to adapt to; spend the refinement budget on the uniform model.
    out.refined = evaluator_->run(pilot, rng, refine_n);
    return out;
  }
  try {
    mc::AdaptiveGlitchSampler refit(model, target_cycle(), out.pilot,
                                    adaptive);
    out.refined = evaluator_->run(refit, rng, refine_n);
    out.adapted = true;
  } catch (const std::exception& e) {
    out.downgrade_reason = std::string("adaptive glitch refit failed (") +
                           e.what() +
                           "); refined stage uses the uniform sampler";
    metrics_.add_counter("adaptive.refit_downgrades");
    log_event("run_adaptive_glitch: " + out.downgrade_reason);
    out.refined = evaluator_->run(pilot, rng, refine_n);
  }
  return out;
}

SamplerSelection FaultAttackEvaluator::make_sampler_with_fallback(
    const faultsim::ClockGlitchAttackModel& model,
    const std::string& strategy) const {
  SamplerSelection sel;
  sel.requested = strategy;
  sel.sampler = make_glitch_sampler(model);
  sel.actual = "glitch-uniform";
  metrics_.add_counter("sampler.built.glitch-uniform");
  if (strategy != "random" && strategy != "glitch-uniform") {
    sel.downgrade_reason = "strategy '" + strategy +
                           "' has no clock-glitch equivalent (no spatial "
                           "structure to exploit), using glitch-uniform";
    metrics_.add_counter("sampler.downgrades");
    log_event("sampler downgrade: " + sel.downgrade_reason);
  }
  return sel;
}

SamplerSelection FaultAttackEvaluator::make_sampler_with_fallback(
    const faultsim::VoltageGlitchAttackModel& model,
    const std::string& strategy) const {
  SamplerSelection sel;
  sel.requested = strategy;
  sel.sampler = make_voltage_sampler(model);
  sel.actual = "voltage-uniform";
  metrics_.add_counter("sampler.built.voltage-uniform");
  if (strategy != "random" && strategy != "voltage-uniform") {
    sel.downgrade_reason = "strategy '" + strategy +
                           "' has no voltage-glitch equivalent (no spatial "
                           "structure to exploit), using voltage-uniform";
    metrics_.add_counter("sampler.downgrades");
    log_event("sampler downgrade: " + sel.downgrade_reason);
  }
  return sel;
}

SamplerSelection FaultAttackEvaluator::make_sampler_with_fallback(
    const AttackModel& attack, const std::string& strategy) const {
  FAV_ENSURE_MSG(strategy == "importance" || strategy == "cone" ||
                     strategy == "random",
                 "unknown sampling strategy '" << strategy << "'");
  SamplerSelection sel;
  sel.requested = strategy;
  auto downgrade = [&](const std::string& from, const std::string& to,
                       const std::exception& e) {
    if (!sel.downgrade_reason.empty()) sel.downgrade_reason += "; ";
    sel.downgrade_reason +=
        from + " sampler unavailable (" + e.what() + "), falling back to " + to;
    metrics_.add_counter("sampler.downgrades");
    log_event("sampler downgrade: " + sel.downgrade_reason);
  };
  if (strategy == "importance") {
    try {
      sel.sampler = make_importance_sampler(attack);
      sel.actual = "importance";
      metrics_.add_counter("sampler.built.importance");
      return sel;
    } catch (const std::exception& e) {
      downgrade("importance", "cone", e);
    }
  }
  if (strategy == "importance" || strategy == "cone") {
    try {
      sel.sampler = make_cone_sampler(attack);
      sel.actual = "cone";
      metrics_.add_counter("sampler.built.cone");
      return sel;
    } catch (const std::exception& e) {
      downgrade("cone", "random", e);
    }
  }
  sel.sampler = make_random_sampler(attack);
  sel.actual = "random";
  metrics_.add_counter("sampler.built.random");
  return sel;
}

std::unique_ptr<mc::Sampler> FaultAttackEvaluator::make_importance_sampler(
    const AttackModel& attack) const {
  attacks_.push_back(std::make_unique<AttackModel>(attack));
  models_.push_back(std::make_unique<precharac::SamplingModel>(
      soc_, placement_, *cone_, *signatures_, *charac_, *attacks_.back(),
      sampling_params_for(*attacks_.back())));
  return std::make_unique<mc::ImportanceSampler>(*models_.back());
}

}  // namespace fav::core
