// Public facade of the cross-level Monte Carlo framework.
//
// FaultAttackEvaluator wires the whole pipeline of the paper together for a
// given security benchmark:
//   SoC elaboration -> placement -> golden run (+checkpoints)
//   -> pre-characterization (signatures, correlations, register classes)
//   -> responding-signal cone extraction
//   -> gate-level injection simulator
//   -> samplers (random / cone / importance) and the SSF evaluator.
// Typical use (see examples/quickstart.cpp):
//
//   core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
//   auto attack = fw.chip_attack_model();
//   Rng rng(42);
//   auto importance = fw.make_importance_sampler(attack);
//   auto result = fw.evaluator().run(*importance, rng, 2000);
//   std::cout << "SSF = " << result.ssf() << "\n";
#pragma once

#include <functional>
#include <memory>

#include "faultsim/attack_model.h"
#include "faultsim/clock_glitch.h"
#include "faultsim/injection.h"
#include "faultsim/technique.h"
#include "faultsim/voltage_glitch.h"
#include "layout/placement.h"
#include "mc/adaptive.h"
#include "mc/evaluator.h"
#include "mc/samplers.h"
#include "netlist/cones.h"
#include "precharac/artifact.h"
#include "precharac/characterize.h"
#include "precharac/sampling_model.h"
#include "precharac/signatures.h"
#include "rtl/golden.h"
#include "soc/benchmark.h"
#include "soc/soc_netlist.h"

namespace fav::core {

struct FrameworkConfig {
  /// Fault-injection technique evaluated by this framework: "radiation"
  /// (the paper's radiated-spot model), "clock-glitch" or "voltage-glitch".
  /// Selects the AttackTechnique the shared engine is built with;
  /// pre-characterization and the radiation sampler factories are
  /// technique-independent and always available.
  std::string technique = "radiation";
  /// Campaign mode: "sampled" (Monte Carlo over the holistic model, the
  /// paper's estimator) or "exhaustive" (sweep the technique's enumerable
  /// fault space, bind_exhaustive_space + SsfEvaluator::run_exhaustive).
  /// The framework itself only validates the value; the campaign drivers
  /// (CLI, serve tier) pick the run path from it.
  std::string mode = "sampled";
  /// Golden run horizon and checkpoint spacing (Section 5.1).
  std::uint64_t checkpoint_interval = 32;
  /// Cone extraction depths; the fanin depth must cover the attack t-range.
  int cone_fanin_depth = 60;
  int cone_fanout_depth = 4;
  /// Pre-characterization workload horizon.
  std::uint64_t precharac_cycles = 400;
  /// Persistent pre-characterization artifact (precharac/artifact.h). Empty
  /// disables caching. When set, construction tries to load the bundle from
  /// this path and falls back to recompute-and-rewrite on any miss, stale
  /// fingerprint, or corruption — results are bitwise-identical either way.
  /// The path is deliberately NOT part of the campaign fingerprint: a
  /// campaign may be resumed with a different (or no) cache.
  std::string precharac_cache_path;
  /// Bounded wait on the artifact's advisory elaboration lock (concurrent
  /// cold starts: one process elaborates, the rest load). On timeout the
  /// process proceeds unlocked — worst case is a redundant elaboration and
  /// an atomic last-writer-wins rewrite, never a deadlock.
  std::uint64_t precharac_cache_lock_timeout_ms = 120000;
  precharac::CharacterizationConfig characterization;
  precharac::SamplingParams sampling;
  faultsim::TimingModel timing;
  faultsim::TransientParams transient;
  /// Evaluation-engine knobs; `evaluator.threads` selects the worker count
  /// for every run issued through this framework (0 = all hardware threads).
  mc::EvaluatorConfig evaluator;
  /// Sink for robustness diagnostics (sampler downgrades, pilot fallbacks).
  /// Null routes messages to stderr.
  std::function<void(const std::string&)> log;

  /// Structural validation of the knobs above. FaultAttackEvaluator rejects
  /// an invalid config on construction (StatusError, kInvalidArgument)
  /// before any expensive elaboration, instead of misbehaving downstream.
  Status validate() const;
};

/// Campaign identity: every knob that changes the sample stream or its
/// evaluation. The fingerprint over it keys the crash-safe journal (and the
/// supervised-campaign protocol), so a stale journal from a different
/// configuration is rejected on resume. Worker count, heartbeat, and shard
/// size are deliberately *not* part of the key — a campaign may be resumed
/// with different parallelism and must produce the identical result.
struct CampaignKey {
  std::string benchmark;
  std::string technique;
  std::string strategy;  // sampler actually built (after fallback)
  std::uint64_t seed = 0;
  std::uint64_t samples = 0;
  int t_range = 0;
  double radius = 0.0;
  std::uint64_t cycle_budget = 0;
};

/// FNV-1a over the canonical "benchmark|technique|strategy|seed|samples|
/// t_range|radius|cycle_budget" string. Stable across processes: the
/// supervisor and each of its workers derive the same fingerprint from the
/// same CLI flags.
std::uint64_t campaign_fingerprint(const CampaignKey& key);

/// How the pre-characterization cache resolved for one framework
/// construction, for run reports and logs.
struct PrecharacCacheReport {
  bool enabled = false;
  std::string path;
  /// "off" (cache disabled), or the decisive load outcome:
  /// "hit" | "miss" | "stale" | "corrupt".
  std::string outcome = "off";
  /// Provenance of a non-hit (why the artifact was rejected), or how a hit
  /// was obtained (e.g. after waiting on the elaboration lock).
  std::string detail;
  /// True when this process elaborated and wrote the artifact.
  bool stored = false;
};

/// Outcome of the two-stage adaptive estimation (see run_adaptive).
struct AdaptiveRunResult {
  mc::SsfResult pilot;
  mc::SsfResult refined;
  /// False when the pilot found no successes and the refit stage fell back
  /// to the pilot sampler (there was nothing to adapt to), or when the refit
  /// construction failed and was downgraded (see downgrade_reason).
  bool adapted = false;
  /// Non-empty when a stage degraded instead of throwing: why the refit (or
  /// the pilot sampler) was replaced with a simpler fallback.
  std::string downgrade_reason;
};

/// A sampler plus the provenance of any graceful degradation that happened
/// while building it (see make_sampler_with_fallback).
struct SamplerSelection {
  std::unique_ptr<mc::Sampler> sampler;
  std::string requested;         // strategy asked for
  std::string actual;            // strategy actually built
  std::string downgrade_reason;  // empty when requested == actual
  bool downgraded() const { return !downgrade_reason.empty(); }
};

class FaultAttackEvaluator {
 public:
  explicit FaultAttackEvaluator(soc::SecurityBenchmark bench,
                                const FrameworkConfig& config = {});

  /// --- assembled components (valid for this object's lifetime) ---------
  const FrameworkConfig& config() const { return config_; }
  const soc::SecurityBenchmark& benchmark() const { return bench_; }
  const soc::SocNetlist& soc() const { return soc_; }
  const layout::Placement& placement() const { return placement_; }
  const rtl::GoldenRun& golden() const { return *golden_; }
  const netlist::UnrolledCone& cone() const { return *cone_; }
  const precharac::SignatureTrace& signatures() const { return *signatures_; }
  const precharac::RegisterCharacterization& characterization() const {
    return *charac_;
  }
  const faultsim::InjectionSimulator& injector() const { return *injector_; }
  /// The technique the shared engine evaluates (config().technique).
  const faultsim::AttackTechnique& technique() const { return *technique_; }
  /// Valid only when config().technique == "clock-glitch".
  const faultsim::ClockGlitchSimulator& glitch_simulator() const;
  /// Valid only when config().technique == "voltage-glitch".
  const faultsim::VoltageGlitchSimulator& voltage_simulator() const;
  const mc::SsfEvaluator& evaluator() const { return *evaluator_; }
  std::uint64_t target_cycle() const { return evaluator_->target_cycle(); }

  /// Pre-characterization observability (always collected — the phases run
  /// once and the cost of a few clock reads is nil): per-phase construction
  /// timers ("precharac.golden_runs_ns", "precharac.cone_ns",
  /// "precharac.signatures_ns", "precharac.characterization_ns",
  /// "precharac.injector_ns", "precharac.potency_ns"), potency counters,
  /// and sampler-fallback provenance ("sampler.downgrades",
  /// "sampler.built.<strategy>"). Merge into a campaign sink for run
  /// reports. Counters mutate under make_sampler_with_fallback /
  /// run_adaptive; access is not synchronized — same single-caller contract
  /// as those methods.
  const MetricsSink& metrics() const { return metrics_; }

  /// How the pre-characterization cache resolved (outcome "off" when
  /// config().precharac_cache_path is empty). Cache counters
  /// ("precharac.cache_{hit,miss,stale,corrupt}", "precharac.cache_saved")
  /// land in metrics().
  const PrecharacCacheReport& precharac_cache() const { return cache_report_; }

  /// The artifact content address for this framework's configuration.
  precharac::PrecharacKey precharac_key() const;

  /// --- attack models -----------------------------------------------------
  /// Uniform f_{T,P} over the whole chip (every placed cell a candidate).
  faultsim::AttackModel chip_attack_model(double radius = 1.5,
                                          int t_range = 50) const;
  /// f_{T,P} restricted to a sub-block around the security logic: the cells
  /// in the responding signal's cones (the "1/8 of MPU" setup of Section 6).
  faultsim::AttackModel subblock_attack_model(double radius = 1.5,
                                              int t_range = 50) const;
  /// Holistic model for the clock-glitch technique: t uniform over
  /// [0, min(t_range, Tt + 1)), default depth grid. The clamp keeps every
  /// timing distance inside the program (t <= Tt), which GlitchSampler
  /// construction enforces.
  faultsim::ClockGlitchAttackModel glitch_attack_model(int t_range = 50) const;
  /// Holistic model for the voltage-glitch technique: t uniform over
  /// [0, min(t_range, Tt + 1)), default droop grid. Clamped like
  /// glitch_attack_model.
  faultsim::VoltageGlitchAttackModel voltage_attack_model(
      int t_range = 50) const;

  /// --- exhaustive sweeps -------------------------------------------------
  /// Binds the active technique's enumerable fault space from the standard
  /// per-technique model (radiation: subblock_attack_model(radius, t_range);
  /// clock/voltage glitch: the clamped (t, depth/droop) grid) and returns
  /// its size. Call once, before evaluation starts — binding mutates the
  /// shared technique and is not thread-safe against in-flight runs. The
  /// index -> sample mapping is then fixed for run_exhaustive and for every
  /// supervised worker that re-derives the same binding from the same flags.
  std::uint64_t bind_exhaustive_space(int t_range, double radius) const;

  /// --- samplers ----------------------------------------------------------
  std::unique_ptr<mc::Sampler> make_random_sampler(
      const faultsim::AttackModel& attack) const;
  std::unique_ptr<mc::Sampler> make_cone_sampler(
      const faultsim::AttackModel& attack) const;
  /// Builds the importance model for `attack` (cached per attack identity is
  /// the caller's concern; construction is cheap after pre-characterization).
  std::unique_ptr<mc::Sampler> make_importance_sampler(
      const faultsim::AttackModel& attack) const;
  precharac::SamplingModel make_sampling_model(
      const faultsim::AttackModel& attack) const;

  /// Builds the sampler for `strategy` ("importance", "cone" or "random")
  /// with graceful degradation: if the importance model (or cone support)
  /// fails to build, the next-simpler strategy is tried — importance → cone
  /// → random — and the downgrade is logged (config().log) and recorded in
  /// the returned selection instead of throwing out of the facade. Only a
  /// failure of the final random fallback propagates.
  SamplerSelection make_sampler_with_fallback(
      const faultsim::AttackModel& attack, const std::string& strategy) const;

  /// Uniform sampler over the glitch holistic model (weight 1).
  std::unique_ptr<mc::Sampler> make_glitch_sampler(
      const faultsim::ClockGlitchAttackModel& model) const;
  /// Glitch counterpart of make_sampler_with_fallback. The glitch parameter
  /// space has no spatial structure, so "cone" and "importance" have no
  /// glitch equivalent: any requested strategy other than "random" is
  /// downgraded (logged + counted) to the uniform glitch sampler.
  SamplerSelection make_sampler_with_fallback(
      const faultsim::ClockGlitchAttackModel& model,
      const std::string& strategy) const;

  /// Uniform sampler over the voltage-glitch holistic model (weight 1).
  std::unique_ptr<mc::Sampler> make_voltage_sampler(
      const faultsim::VoltageGlitchAttackModel& model) const;
  /// Voltage-glitch counterpart of make_sampler_with_fallback: like the
  /// clock glitch, the parameter space has no spatial structure, so any
  /// strategy other than "random" downgrades (logged + counted) to the
  /// uniform voltage sampler.
  SamplerSelection make_sampler_with_fallback(
      const faultsim::VoltageGlitchAttackModel& model,
      const std::string& strategy) const;

  /// Sampling parameters for `attack`, including the analytically-enumerated
  /// per-spot direct-hit boosts (see framework.cpp).
  precharac::SamplingParams sampling_params_for(
      const faultsim::AttackModel& attack) const;

  /// --- adaptive two-stage estimation --------------------------------------
  /// Runs `pilot_n` samples of `pilot_sampler`, refits an
  /// AdaptiveImportanceSampler to the pilot's success mass, and runs the
  /// remaining `refine_n` samples with it (falling back to the pilot sampler
  /// when the pilot finds no successes). Both stages execute on the shared
  /// evaluator, so `config().evaluator.threads` parallelizes the whole loop;
  /// pilot records are required (keep_records must stay enabled).
  ///
  /// Degrades gracefully instead of throwing: if the pilot stage fails
  /// (e.g. the pilot sampler throws while drawing), it is re-run on the cone
  /// → random fallback chain; if the refit construction fails, the
  /// refinement budget is spent on the pilot sampler. Every downgrade is
  /// logged and surfaced in AdaptiveRunResult::downgrade_reason.
  AdaptiveRunResult run_adaptive(const faultsim::AttackModel& attack,
                                 mc::Sampler& pilot_sampler, Rng& rng,
                                 std::size_t pilot_n, std::size_t refine_n,
                                 const mc::AdaptiveConfig& adaptive = {}) const;

  /// Two-stage adaptive estimation for the clock-glitch technique: a uniform
  /// pilot over `model`, then an AdaptiveGlitchSampler refit to the pilot's
  /// success mass. Degrades like run_adaptive (no successes or a failed
  /// refit spend the refinement budget on the uniform sampler). Requires
  /// config().technique == "clock-glitch".
  AdaptiveRunResult run_adaptive_glitch(
      const faultsim::ClockGlitchAttackModel& model, Rng& rng,
      std::size_t pilot_n, std::size_t refine_n,
      const mc::AdaptiveConfig& adaptive = {}) const;

 private:
  /// Routes a robustness diagnostic to config().log (stderr when unset).
  void log_event(const std::string& message) const;

  /// Artifact-cache load attempt: validates, installs the bundle and updates
  /// counters/report. `after_wait` marks the double-checked retry after
  /// acquiring the elaboration lock (only a hit is counted then, so the four
  /// outcome counters stay mutually exclusive per process).
  bool try_load_precharac(std::uint64_t fingerprint, bool after_wait);
  /// The expensive elaboration: synthetic golden run, cone extraction,
  /// switching signatures, register characterization.
  void compute_precharac();
  /// Memory-bit potency for the sampling model (analytical enumeration).
  void compute_potency();
  /// Tallies precharac.potent_bits / group_boosted_bits from the installed
  /// potency vector (computed or loaded — reports stay identical).
  void count_potency();
  void save_precharac(std::uint64_t fingerprint);

  FrameworkConfig config_;
  /// mutable: const sampler factories record fallback provenance.
  mutable MetricsSink metrics_;
  soc::SecurityBenchmark bench_;
  soc::SocNetlist soc_;
  layout::Placement placement_;
  rtl::Program synthetic_workload_;
  std::unique_ptr<rtl::GoldenRun> golden_;
  std::unique_ptr<rtl::GoldenRun> synthetic_golden_;
  std::unique_ptr<netlist::UnrolledCone> cone_;
  std::unique_ptr<precharac::SignatureTrace> signatures_;
  std::unique_ptr<precharac::RegisterCharacterization> charac_;
  std::unique_ptr<faultsim::InjectionSimulator> injector_;
  std::unique_ptr<faultsim::ClockGlitchSimulator> glitch_;  // glitch only
  std::unique_ptr<faultsim::VoltageGlitchSimulator> voltage_;  // voltage only
  std::unique_ptr<faultsim::AttackTechnique> technique_;
  std::unique_ptr<mc::SsfEvaluator> evaluator_;
  PrecharacCacheReport cache_report_;
  // Importance samplers own their model; kept alive here.
  mutable std::vector<std::unique_ptr<precharac::SamplingModel>> models_;
  mutable std::vector<std::unique_ptr<faultsim::AttackModel>> attacks_;
};

}  // namespace fav::core
