#include "core/hardening.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace fav::core {

using rtl::Machine;
using rtl::RegisterMap;

namespace {

std::vector<int> select_greedy(const std::map<int, double>& contribution,
                               double coverage) {
  FAV_ENSURE(coverage > 0.0 && coverage <= 1.0);
  std::vector<std::pair<int, double>> ranked(contribution.begin(),
                                             contribution.end());
  std::sort(ranked.begin(), ranked.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  double total = 0;
  for (const auto& [k, c] : ranked) total += c;
  std::vector<int> out;
  double acc = 0;
  for (const auto& [k, c] : ranked) {
    if (total > 0 && acc / total >= coverage) break;
    out.push_back(k);
    acc += c;
  }
  return out;
}

double coverage_of(const std::map<int, double>& contribution,
                   const std::vector<int>& keys) {
  double total = 0;
  for (const auto& [k, c] : contribution) total += c;
  if (total == 0) return 0;
  double covered = 0;
  for (const int k : keys) {
    const auto it = contribution.find(k);
    if (it != contribution.end()) covered += it->second;
  }
  return covered / total;
}

}  // namespace

std::vector<int> select_critical_bits(const mc::SsfResult& result,
                                      double coverage) {
  return select_greedy(result.bit_contribution, coverage);
}

std::vector<int> select_critical_fields(const mc::SsfResult& result,
                                        double coverage) {
  return select_greedy(result.field_contribution, coverage);
}

double attribution_coverage_bits(const mc::SsfResult& result,
                                 const std::vector<int>& bits) {
  return coverage_of(result.bit_contribution, bits);
}

double attribution_coverage(const mc::SsfResult& result,
                            const std::vector<int>& fields) {
  return coverage_of(result.field_contribution, fields);
}

HardeningReport evaluate_hardening(const mc::SsfEvaluator& evaluator,
                                   const soc::SocNetlist& soc,
                                   const mc::SsfResult& result,
                                   const std::vector<int>& protected_bits,
                                   const HardeningOptions& options, Rng& rng) {
  FAV_ENSURE(options.resilience_factor >= 1.0);
  FAV_ENSURE(options.area_factor >= 1.0);
  FAV_ENSURE_MSG(!result.records.empty(),
                "hardening needs per-sample records (EvaluatorConfig::"
                "keep_records)");
  const RegisterMap& map = Machine::reg_map();
  const std::unordered_set<int> hardened(protected_bits.begin(),
                                         protected_bits.end());

  HardeningReport report;
  report.protected_bits = protected_bits;
  report.total_register_bits = static_cast<std::size_t>(map.total_bits());
  report.base_ssf = result.ssf();

  // Unbiased re-evaluation: a flip in a hardened cell survives with
  // probability 1/resilience; outcomes are re-decided on the filtered sets.
  const double survive_p = 1.0 / options.resilience_factor;
  RunningStats stats;
  for (const mc::SampleRecord& rec : result.records) {
    std::vector<int> kept;
    kept.reserve(rec.flipped_bits.size());
    bool changed = false;
    for (const int bit : rec.flipped_bits) {
      if (hardened.count(bit) > 0 && !rng.bernoulli(survive_p)) {
        changed = true;
        continue;
      }
      kept.push_back(bit);
    }
    if (!changed) {
      stats.add(rec.contribution);
      continue;
    }
    const bool success = evaluator.outcome_for_flips(rec.te, kept);
    stats.add(success ? rec.sample.weight : 0.0);
  }
  report.hardened_ssf = stats.mean();

  // Area model over the elaborated netlist.
  const netlist::Netlist& nl = soc.netlist();
  const double gate_area =
      options.gate_area * static_cast<double>(nl.gate_count());
  const double dff_area =
      options.dff_area * static_cast<double>(nl.dffs().size());
  const double added = static_cast<double>(protected_bits.size()) *
                       options.dff_area * (options.area_factor - 1.0);
  report.area_overhead = added / (gate_area + dff_area);
  return report;
}

}  // namespace fav::core
