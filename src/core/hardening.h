// Countermeasure evaluation: selective register hardening (paper Section 6).
//
// The SSF attribution identifies the small set of registers responsible for
// almost all successful attacks ("3% of registers contribute >95% of SSF").
// Hardening replaces those register cells with error-resilient flip-flops
// ([19, 20]: ~10x better resilience at ~3x cell area). Because every
// register-map bit is one DFF cell in the elaborated netlist, selection and
// protection work at bit granularity; field-level helpers exist for
// human-readable reports.
//
// The analysis re-evaluates the recorded Monte Carlo samples with each flip
// of a hardened cell suppressed with probability (1 - 1/resilience),
// yielding an unbiased estimate of the hardened design's SSF, plus the area
// overhead of the change.
#pragma once

#include <vector>

#include "mc/evaluator.h"
#include "util/rng.h"

namespace fav::core {

struct HardeningOptions {
  /// Upset-rate improvement of a hardened cell (10x per [19, 20]).
  double resilience_factor = 10.0;
  /// Cell-area ratio hardened/standard (3x per [19, 20]).
  double area_factor = 3.0;
  /// Area model in gate equivalents.
  double dff_area = 6.0;
  double gate_area = 1.0;
};

struct HardeningReport {
  std::vector<int> protected_bits;  // flat register-map bits (= DFF cells)
  std::size_t total_register_bits = 0;
  double base_ssf = 0;
  double hardened_ssf = 0;
  double area_overhead = 0;  // fraction of total design area added

  double improvement() const {
    return hardened_ssf > 0 ? base_ssf / hardened_ssf : 0.0;
  }
  double protected_register_fraction() const {
    return total_register_bits > 0
               ? static_cast<double>(protected_bits.size()) /
                     static_cast<double>(total_register_bits)
               : 0.0;
  }
};

/// Selects the smallest set of register cells (flat bits) whose summed SSF
/// attribution reaches `coverage` (e.g. 0.95) of the total, greedily by
/// descending contribution.
std::vector<int> select_critical_bits(const mc::SsfResult& result,
                                      double coverage);

/// Field-level variant for reports (e.g. "which named registers matter").
std::vector<int> select_critical_fields(const mc::SsfResult& result,
                                        double coverage);

/// Cumulative attribution share of the given cells.
double attribution_coverage_bits(const mc::SsfResult& result,
                                 const std::vector<int>& bits);
double attribution_coverage(const mc::SsfResult& result,
                            const std::vector<int>& fields);

/// Re-evaluates `result`'s samples with the given cells hardened and
/// computes the area overhead against the evaluated netlist.
/// Note: the re-evaluation overlays the (filtered) flip set at the first
/// injection cycle; for multi-cycle-impact samples this is a single-overlay
/// approximation of the original per-cycle corruption.
HardeningReport evaluate_hardening(const mc::SsfEvaluator& evaluator,
                                   const soc::SocNetlist& soc,
                                   const mc::SsfResult& result,
                                   const std::vector<int>& protected_bits,
                                   const HardeningOptions& options, Rng& rng);

}  // namespace fav::core
