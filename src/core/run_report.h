// The fav.run_report.v1 JSON document: campaign identity, estimate quality
// (SSF, CI, ESS), outcome-path split, precharac-cache provenance, and the
// merged metrics sink. Machine-readable companion to the human-readable
// stdout block of `fav evaluate`.
//
// The writer lives in the library (not the CLI) for two reasons:
//   * the serve daemon and local `fav evaluate` must produce byte-identical
//     reports for the same campaign, so there must be exactly one writer;
//   * every free-form string is routed through json_escape, and that
//     contract is unit-testable here — a report must parse as JSON no
//     matter what lands in a benchmark name, strategy, or cache path.
#pragma once

#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <string>

#include "core/framework.h"
#include "mc/evaluator.h"
#include "util/metrics.h"

namespace fav::core {

/// Minimal JSON string escaping: quotes, backslashes, and control bytes.
/// Every string emitted into a run report goes through this — field values
/// like the benchmark name are caller-controlled free-form input once
/// campaigns arrive over a socket. The implementation lives in util/io
/// (io::json_escape) so JSON emitters below core/ (the serve daemon's stats
/// snapshot) share the one escaper; this alias keeps existing callers and
/// the unit tests in place.
std::string json_escape(const std::string& s);

/// Everything a run report records, decoupled from the CLI's option
/// struct so library callers (the serve daemon) can fill it directly.
struct RunReportInputs {
  std::string benchmark;
  std::string technique;
  std::string strategy;
  /// Campaign mode, "sampled" or "exhaustive" (FrameworkConfig::mode).
  std::string mode = "sampled";
  std::size_t samples = 0;
  std::uint64_t seed = 0;
  std::size_t threads = 1;
  std::size_t batch_lanes = 0;
  std::size_t supervise = 0;
  // Supervisor block (emitted only when `supervised` is true).
  bool supervised = false;
  std::size_t restarts = 0;
  std::size_t quarantined_shards = 0;
  std::size_t quarantined_samples = 0;
  std::size_t storage_full_stops = 0;
  PrecharacCacheReport cache;
  double elapsed_s = 0.0;
  const mc::SsfResult* result = nullptr;   // required
  const MetricsSink* metrics = nullptr;    // required
};

/// Writes the fav.run_report.v1 JSON document. `in.result` and `in.metrics`
/// must be non-null.
void write_run_report(std::ostream& out, const RunReportInputs& in);

}  // namespace fav::core
