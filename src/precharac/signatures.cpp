#include "precharac/signatures.h"

namespace fav::precharac {

using netlist::NodeId;

SignatureTrace::SignatureTrace(const soc::SocNetlist& soc,
                               const rtl::Program& workload,
                               std::uint64_t max_cycles) {
  const netlist::Netlist& nl = soc.netlist();
  soc::GateLevelMachine gate(soc, workload);

  std::vector<char> prev(nl.node_count(), 0);
  std::vector<BitVector> sigs(nl.node_count());
  // One bit lands per node per cycle; reserving up-front removes every
  // intermediate word reallocation from the recording loop.
  for (BitVector& sig : sigs) sig.reserve(max_cycles);

  std::uint64_t c = 0;
  for (; c < max_cycles && !gate.halted(); ++c) {
    // Settle the cycle's combinational values, sample every node, then let
    // step() finish the cycle (its own settle_inputs() is idempotent).
    gate.settle_inputs();
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      const char v = gate.sim().value(id) ? 1 : 0;
      // Cycle 0 has no predecessor: by convention ss_0 = 0 (no switch).
      sigs[id].push_back(c > 0 && v != prev[id]);
      prev[id] = v;
    }
    gate.step();
  }
  cycles_ = c;
  signatures_ = std::move(sigs);
}

const BitVector& SignatureTrace::signature(NodeId node) const {
  FAV_ENSURE_MSG(node < signatures_.size(), "node out of range");
  return signatures_[node];
}

double SignatureTrace::correlation(NodeId node, NodeId rs, int frame) const {
  const BitVector& sg = signature(node);
  const BitVector& sr = signature(rs);
  const std::size_t norm = sg.count();
  if (norm == 0) return 0.0;
  const BitVector shifted =
      frame >= 0 ? sr.shifted_down(static_cast<std::size_t>(frame))
                 : sr.shifted_up(static_cast<std::size_t>(-frame));
  return static_cast<double>(sg.and_count(shifted)) /
         static_cast<double>(norm);
}

}  // namespace fav::precharac
