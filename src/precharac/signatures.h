// Switching signatures and bit-flip correlation (paper Section 4, step 2).
//
// A node's switching signature ss(g) is the per-cycle indicator of its logic
// value toggling. The bit-flip correlation between a node in the i-th
// unrolled frame and the responding signal rs is
//   Corr_i(g, rs) = |ss(g) & (ss(rs) << i)| / |ss(g)|,
// computed bit-parallel on packed signatures. Signatures are recorded by one
// gate-level logic simulation of a synthetic workload (the cheap,
// one-time pre-characterization pass).
#pragma once

#include <vector>

#include "rtl/machine.h"
#include "soc/gate_machine.h"
#include "soc/soc_netlist.h"
#include "util/bitvector.h"

namespace fav::precharac {

class SignatureTrace {
 public:
  /// Simulates `workload` on the gate level for up to `max_cycles` and
  /// records every node's switching signature.
  SignatureTrace(const soc::SocNetlist& soc, const rtl::Program& workload,
                 std::uint64_t max_cycles);

  /// Rebuilds a trace from previously recorded signatures (the artifact-cache
  /// load path); `signatures` is indexed by NodeId, one bit per cycle.
  SignatureTrace(std::uint64_t cycles, std::vector<BitVector> signatures)
      : cycles_(cycles), signatures_(std::move(signatures)) {}

  std::uint64_t cycles() const { return cycles_; }

  /// Switching signature of `node`; one bit per simulated cycle.
  const BitVector& signature(netlist::NodeId node) const;

  /// Bit-flip correlation Corr_frame(node, rs). Frame >= 0 looks backwards
  /// (fanin side: node toggles `frame` cycles before rs), frame < 0 forwards.
  /// Returns 0 when the node never switches (|ss(g)| = 0).
  double correlation(netlist::NodeId node, netlist::NodeId rs,
                     int frame) const;

 private:
  std::uint64_t cycles_ = 0;
  std::vector<BitVector> signatures_;  // indexed by NodeId
};

}  // namespace fav::precharac
