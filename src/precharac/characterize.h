// Register characterization: error lifetime and error contamination number
// (paper Section 4, Observation 3 / step 3).
//
// For every sequential bit, bit errors are injected at a sweep of cycles of
// a synthetic workload (fast RTL-level simulation); for each injection we
// measure:
//  * error lifetime  — cycles until the register state re-converges to the
//    golden trajectory (capped at a horizon; the cap reads as "long/infinite"),
//  * contamination   — number of *other* architectural registers that ever
//    diverge from golden before re-convergence.
// Registers with long lifetime and ~zero contamination are classified as
// memory-type (their attack outcome is evaluated analytically); the rest are
// computation-type (sampled).
#pragma once

#include <cstdint>
#include <vector>

#include "rtl/golden.h"
#include "rtl/machine.h"

namespace fav::precharac {

struct CharacterizationConfig {
  /// Forward-simulation horizon per injection; lifetimes cap here.
  std::uint64_t horizon = 200;
  /// Injection cycles: first_cycle, first_cycle + stride, ...
  std::uint64_t first_cycle = 2;
  std::uint64_t stride = 13;
  /// Classification thresholds (Observation 3: "long lifetime and
  /// close-to-0 contamination number").
  double lifetime_threshold = 100.0;
  double contamination_threshold = 0.5;
};

struct BitCharacterization {
  double avg_lifetime = 0.0;
  double max_lifetime = 0.0;
  double avg_contamination = 0.0;
  int samples = 0;
};

class RegisterCharacterization {
 public:
  /// Characterizes the given flat register-map bits (all bits if empty)
  /// against `golden` (the synthetic-workload golden run).
  RegisterCharacterization(const rtl::GoldenRun& golden,
                           const CharacterizationConfig& config = {},
                           std::vector<int> bits = {});

  /// Rebuilds a characterization from previously measured per-bit results
  /// (the artifact-cache load path); both vectors are indexed by flat bit
  /// and must cover the full register map.
  RegisterCharacterization(const CharacterizationConfig& config,
                           std::vector<BitCharacterization> bits,
                           std::vector<char> done);

  const CharacterizationConfig& config() const { return config_; }

  bool characterized(int flat_bit) const;
  const BitCharacterization& bit(int flat_bit) const;

  /// Memory-type test per the thresholds; bits that were not characterized
  /// are conservatively computation-type.
  bool is_memory_type(int flat_bit) const;
  std::vector<int> memory_type_bits() const;

  /// Lifetime assigned to a bit for the sampling weights' L(g): average
  /// lifetime, or 0 for uncharacterized bits.
  double lifetime(int flat_bit) const;

  /// Raw per-bit storage, indexed by flat bit (artifact serialization).
  const std::vector<BitCharacterization>& raw_bits() const { return bits_; }
  const std::vector<char>& raw_done() const { return done_; }

 private:
  CharacterizationConfig config_;
  std::vector<BitCharacterization> bits_;  // indexed by flat bit
  std::vector<char> done_;
};

}  // namespace fav::precharac
