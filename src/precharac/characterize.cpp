#include "precharac/characterize.h"

#include <algorithm>
#include <unordered_set>

#include "util/check.h"

namespace fav::precharac {

using rtl::Machine;
using rtl::RegisterMap;

RegisterCharacterization::RegisterCharacterization(
    const CharacterizationConfig& config,
    std::vector<BitCharacterization> bits, std::vector<char> done)
    : config_(config), bits_(std::move(bits)), done_(std::move(done)) {
  const auto total =
      static_cast<std::size_t>(Machine::reg_map().total_bits());
  FAV_ENSURE_MSG(bits_.size() == total && done_.size() == total,
                "characterization size does not match the register map");
}

RegisterCharacterization::RegisterCharacterization(
    const rtl::GoldenRun& golden, const CharacterizationConfig& config,
    std::vector<int> bits)
    : config_(config) {
  FAV_ENSURE(config.horizon > 0);
  FAV_ENSURE(config.stride > 0);
  const RegisterMap& map = Machine::reg_map();
  bits_.resize(static_cast<std::size_t>(map.total_bits()));
  done_.assign(static_cast<std::size_t>(map.total_bits()), 0);

  if (bits.empty()) {
    bits.resize(static_cast<std::size_t>(map.total_bits()));
    for (int i = 0; i < map.total_bits(); ++i) {
      bits[static_cast<std::size_t>(i)] = i;
    }
  }

  const std::uint64_t length = golden.length();
  for (const int flat : bits) {
    FAV_ENSURE_MSG(flat >= 0 && flat < map.total_bits(),
                  "flat bit " << flat << " out of range");
    auto& bc = bits_[static_cast<std::size_t>(flat)];
    const int origin_field = map.locate(flat).first;

    for (std::uint64_t c = config.first_cycle; c < length;
         c += config.stride) {
      Machine m = golden.restore(c);
      map.flip_bit(m.mutable_state(), flat);

      double lifetime = static_cast<double>(config.horizon);
      std::unordered_set<int> contaminated;
      for (std::uint64_t k = 0; k < config.horizon; ++k) {
        const std::uint64_t gold_cycle = std::min(c + k, length);
        const BitVector faulty = map.pack(m.state());
        const BitVector diff = faulty ^ golden.state_bits_at(gold_cycle);
        if (diff.none()) {
          lifetime = static_cast<double>(k);
          break;
        }
        for (const std::size_t dbit : diff.set_bits()) {
          const int f = map.locate(static_cast<int>(dbit)).first;
          if (f != origin_field) contaminated.insert(f);
        }
        m.step();
      }

      bc.avg_lifetime += lifetime;
      bc.max_lifetime = std::max(bc.max_lifetime, lifetime);
      bc.avg_contamination += static_cast<double>(contaminated.size());
      ++bc.samples;
    }

    if (bc.samples > 0) {
      bc.avg_lifetime /= bc.samples;
      bc.avg_contamination /= bc.samples;
    }
    done_[static_cast<std::size_t>(flat)] = 1;
  }
}

bool RegisterCharacterization::characterized(int flat_bit) const {
  FAV_ENSURE(flat_bit >= 0 &&
            flat_bit < static_cast<int>(done_.size()));
  return done_[static_cast<std::size_t>(flat_bit)] != 0;
}

const BitCharacterization& RegisterCharacterization::bit(int flat_bit) const {
  FAV_ENSURE_MSG(characterized(flat_bit),
                "bit " << flat_bit << " was not characterized");
  return bits_[static_cast<std::size_t>(flat_bit)];
}

bool RegisterCharacterization::is_memory_type(int flat_bit) const {
  if (!characterized(flat_bit)) return false;
  const auto& bc = bits_[static_cast<std::size_t>(flat_bit)];
  return bc.samples > 0 &&
         bc.avg_lifetime >= config_.lifetime_threshold &&
         bc.avg_contamination <= config_.contamination_threshold;
}

std::vector<int> RegisterCharacterization::memory_type_bits() const {
  std::vector<int> out;
  for (int i = 0; i < static_cast<int>(bits_.size()); ++i) {
    if (is_memory_type(i)) out.push_back(i);
  }
  return out;
}

double RegisterCharacterization::lifetime(int flat_bit) const {
  if (!characterized(flat_bit)) return 0.0;
  return bits_[static_cast<std::size_t>(flat_bit)].avg_lifetime;
}

}  // namespace fav::precharac
