#include "precharac/sampling_model.h"

#include <algorithm>
#include <numeric>

namespace fav::precharac {

using faultsim::FaultSample;
using netlist::CellType;
using netlist::NodeId;

SamplingModel::SamplingModel(const soc::SocNetlist& soc,
                             const layout::Placement& placement,
                             const netlist::UnrolledCone& cone,
                             const SignatureTrace& signatures,
                             const RegisterCharacterization& characterization,
                             const faultsim::AttackModel& attack,
                             const SamplingParams& params)
    : soc_(&soc), attack_(&attack), params_(params) {
  attack.check_valid();
  FAV_ENSURE(params.alpha >= 0);
  FAV_ENSURE(params.beta >= 0);
  FAV_ENSURE(params.memory_boost >= 0);
  FAV_ENSURE(params.defensive_mix >= 0.0 && params.defensive_mix <= 1.0);
  FAV_ENSURE(params.transit_boost >= 0);
  const netlist::Netlist& nl = soc.netlist();
  const NodeId rs = cone.responding_signal();

  // --- L(g): reverse-topological max over same-cycle fanout registers ----
  lifetime_l_.assign(nl.node_count(), 0.0);
  for (const NodeId dff : nl.dffs()) {
    const int bit = soc.flat_bit_for_dff(dff);
    lifetime_l_[dff] = characterization.lifetime(bit);
  }
  const auto& topo = nl.topo_order();
  const auto& fanouts = nl.fanouts();
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    double l = 0.0;
    for (const auto& e : fanouts[*it]) {
      l = std::max(l, lifetime_l_[e.consumer]);
    }
    lifetime_l_[*it] = l;
  }

  // --- memory-type cone registers ---------------------------------------
  // Per-DFF boost score: 1 for a plain memory-type cone register, plus the
  // potency bonus when the analytical evaluator marked its bit as
  // attack-enabling.
  std::vector<double> mem_score_dff(nl.node_count(), 0.0);
  if (!params.memory_bit_potency.empty()) {
    FAV_ENSURE_MSG(params.memory_bit_potency.size() ==
                      static_cast<std::size_t>(
                          soc::SocNetlist::reg_map().total_bits()),
                  "memory_bit_potency size mismatch");
  }
  for (const NodeId dff : cone.all_fanin_registers()) {
    const int bit = soc.flat_bit_for_dff(dff);
    if (bit < 0) continue;
    double score = characterization.is_memory_type(bit) ? 1.0 : 0.0;
    if (!params.memory_bit_potency.empty()) {
      // Potent bits score regardless of their empirical class: potency means
      // the analytical evaluator proved the flip attack-enabling.
      score += params.potency_boost *
               params.memory_bit_potency[static_cast<std::size_t>(bit)];
    }
    if (score > 0.0) mem_score_dff[dff] = score;
  }

  // --- transit reach: gates that can latch errors into potent registers ---
  // reach[g] = a combinational path exists from g to the D input of a
  // register whose single-bit corruption analytically enables the attack.
  std::vector<char> potent_dff(nl.node_count(), 0);
  if (!params.memory_bit_potency.empty()) {
    for (const NodeId dff : nl.dffs()) {
      const int bit = soc.flat_bit_for_dff(dff);
      if (bit >= 0 &&
          params.memory_bit_potency[static_cast<std::size_t>(bit)] > 0.0) {
        potent_dff[dff] = 1;
      }
    }
  }
  std::vector<char> potent_reach(nl.node_count(), 0);
  for (auto it = topo.rbegin(); it != topo.rend(); ++it) {
    char reach = 0;
    for (const auto& e : fanouts[*it]) {
      reach |= nl.is_dff(e.consumer) ? potent_dff[e.consumer]
                                     : potent_reach[e.consumer];
    }
    potent_reach[*it] = reach;
  }

  // --- per-candidate spot summaries --------------------------------------
  const double max_radius =
      *std::max_element(attack.radii.begin(), attack.radii.end());
  mem_score_.assign(nl.node_count(), 0.0);
  transit_count_.assign(nl.node_count(), 0);
  // spot[c] = cells covered by the largest radiated region centered at c.
  std::vector<std::vector<NodeId>> spots(nl.node_count());
  for (const NodeId c : attack.candidate_centers) {
    FAV_ENSURE_MSG(placement.is_placed(c),
                  "candidate center " << c << " is not a placed cell");
    placement.nodes_within(c, max_radius, spots[c]);
    double score = 0.0;
    int transit = 0;
    for (const NodeId g : spots[c]) {
      score += mem_score_dff[g];
      if (potent_reach[g] != 0 && nl.is_comb_gate(g)) ++transit;
    }
    mem_score_[c] = score;
    transit_count_[c] = transit;
  }

  // --- per-frame weights -------------------------------------------------
  // Frame alignment: a transient generated at a gate during cycle Te = Tt-t
  // corresponds to unrolled frame t (the gate copy feeding the registers
  // whose frame-(t-1) value reaches rs); a *direct* DFF upset corrupts the
  // register's value starting at frame t-1.
  auto weight_of = [&](int frame, NodeId c) -> double {
    double corr_term = 0.0;
    bool touches_cone = false;
    for (const NodeId g : spots[c]) {
      const bool dff = nl.is_dff(g);
      const int eff_frame = dff ? frame - 1 : frame;
      if (eff_frame < 0 || !cone.contains(eff_frame, g)) continue;
      touches_cone = true;
      if (lifetime_l_[g] >= params.beta * eff_frame) {
        corr_term =
            std::max(corr_term, signatures.correlation(g, rs, eff_frame));
      }
    }
    const double mem = frame >= 1 ? mem_score_[c] : 0.0;
    const double transit =
        frame >= 1 ? static_cast<double>(transit_count_[c]) : 0.0;
    double direct = 0.0;
    if (frame >= 1 && c < params.center_boost.size()) {
      direct = params.center_boost[c];
    }
    if (!touches_cone && mem == 0.0 && transit == 0.0 && direct == 0.0) {
      return 0.0;
    }
    return 1.0 + params.alpha * corr_term + params.memory_boost * mem +
           params.transit_boost * transit + direct;
  };

  std::vector<double> omegas;
  frames_.resize(static_cast<std::size_t>(attack.t_count()));
  for (int t = attack.t_min; t <= attack.t_max; ++t) {
    Frame& fr = frames_[static_cast<std::size_t>(t - attack.t_min)];
    fr.center_index.assign(nl.node_count(), -1);
    for (const NodeId c : attack.candidate_centers) {
      const double w = weight_of(t, c);
      if (w <= 0.0) continue;
      fr.center_index[c] = static_cast<int>(fr.centers.size());
      fr.centers.push_back(c);
      fr.weights.push_back(w);
      fr.total_weight += w;
    }
    if (!fr.centers.empty()) {
      fr.conditional = DiscreteDistribution(fr.weights);
    }
    omegas.push_back(fr.total_weight);
  }
  const double total = std::accumulate(omegas.begin(), omegas.end(), 0.0);
  FAV_ENSURE_MSG(total > 0.0,
                "no candidate spot touches the responding signal's cones — "
                "importance sampling has empty support");
  g_t_ = DiscreteDistribution(omegas);
}

double SamplingModel::lifetime_l(NodeId node) const {
  FAV_ENSURE(node < lifetime_l_.size());
  return lifetime_l_[node];
}

double SamplingModel::memory_score(NodeId center) const {
  FAV_ENSURE(center < mem_score_.size());
  return mem_score_[center];
}

int SamplingModel::transit_count(NodeId center) const {
  FAV_ENSURE(center < transit_count_.size());
  return transit_count_[center];
}

int SamplingModel::frame_index(int t) const {
  FAV_ENSURE_MSG(t >= attack_->t_min && t <= attack_->t_max,
                "t out of attack range");
  return t - attack_->t_min;
}

double SamplingModel::center_weight(int frame, NodeId center) const {
  if (frame < attack_->t_min || frame > attack_->t_max) return 0.0;
  const Frame& fr = frames_[static_cast<std::size_t>(frame_index(frame))];
  if (center >= fr.center_index.size()) return 0.0;
  const int idx = fr.center_index[center];
  return idx < 0 ? 0.0 : fr.weights[static_cast<std::size_t>(idx)];
}

double SamplingModel::g_pmf(int t, NodeId center) const {
  const double f_tc =
      1.0 / (static_cast<double>(attack_->t_count()) *
             static_cast<double>(attack_->candidate_centers.size()));
  const double eps = params_.defensive_mix;

  double weighted = 0.0;
  const Frame& fr = frames_[static_cast<std::size_t>(frame_index(t))];
  if (!fr.centers.empty() && center < fr.center_index.size()) {
    const int idx = fr.center_index[center];
    if (idx >= 0) {
      weighted = g_t_.pmf(static_cast<std::size_t>(frame_index(t))) *
                 fr.conditional.pmf(static_cast<std::size_t>(idx));
    }
  }
  return (1.0 - eps) * weighted + eps * f_tc;
}

FaultSample SamplingModel::sample(Rng& rng) const {
  FaultSample s;
  if (rng.bernoulli(params_.defensive_mix)) {
    // Defensive component: plain draw from f_{T,P}.
    s.t = static_cast<int>(rng.uniform_int(attack_->t_min, attack_->t_max));
    s.center =
        attack_->candidate_centers[rng.uniform_below(
            attack_->candidate_centers.size())];
  } else {
    const std::size_t ti = g_t_.sample(rng);
    s.t = attack_->t_min + static_cast<int>(ti);
    const Frame& fr = frames_[ti];
    FAV_ENSURE_MSG(!fr.centers.empty(),
                  "sampled a frame with empty support (zero weight expected)");
    s.center = fr.centers[fr.conditional.sample(rng)];
  }
  s.radius = attack_->radii[rng.uniform_below(attack_->radii.size())];
  s.strike_frac = attack_->draw_strike_frac(rng);
  s.impact_cycles = attack_->impact_cycles;
  // Importance weight f/g over the mixture; the uniform radius and
  // strike_frac factors cancel. Bounded by 1/defensive_mix.
  const double f_tc =
      1.0 / (static_cast<double>(attack_->t_count()) *
             static_cast<double>(attack_->candidate_centers.size()));
  s.weight = f_tc / g_pmf(s.t, s.center);
  return s;
}

}  // namespace fav::precharac
