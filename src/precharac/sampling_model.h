// Importance-sampling distribution built from the pre-characterization
// (paper Section 4, final recipe):
//
//   g_{T,P} = g_T * g_{P|T}
//   g_T(t=i)        ∝ w_i = Σ_{c ∈ Ω_i} w(i, c)
//   g_{P|T}(c|t=i)  ∝ w(i, c),   radius ~ Unif (as in f)
//
// with the per-candidate weight
//   w(i, c) = 1 + α · max_{g ∈ S(c) ∩ cone_i} Corr_i(g, rs) δ(L(g) ≥ β i)
//               + γ · mem_hits(c) · δ(i ≥ 1)
// where S(c) is the radiated spot around center c (placement query with the
// attack's maximum radius) and mem_hits(c) counts memory-type cone registers
// inside S(c).
//
// Differences from the paper's formula, and why:
//  * the weight is per *spot*, not per gate: a radiated region with r > 0
//    strikes every cell it covers, so the support must include any center
//    whose spot intersects the cones — otherwise the estimator is biased
//    (f·e > 0 where g = 0). The α term aggregates over the covered cone
//    cells with max().
//  * the γ term implements the paper's mixed strategy ("analytical analysis
//    for memory-type registers") in sampled form: memory-type registers
//    barely switch, so the correlation term cannot see them, yet spots that
//    upset them dominate SSF (their errors persist until the target cycle
//    and are resolved analytically). Boosting their neighbourhoods — and
//    correcting through the importance weight — moves sampling mass onto
//    the dominant subspace, which is where the variance reduction comes
//    from. δ(i ≥ 1) excludes t = 0: an error latched at the end of the
//    target cycle is too late to influence it.
#pragma once

#include <vector>

#include "faultsim/attack_model.h"
#include "layout/placement.h"
#include "netlist/cones.h"
#include "precharac/characterize.h"
#include "precharac/signatures.h"
#include "soc/soc_netlist.h"
#include "util/discrete_dist.h"

namespace fav::precharac {

struct SamplingParams {
  double alpha = 4.0;          // correlation emphasis
  double beta = 1.0;           // lifetime requirement per unrolled cycle
  double memory_boost = 1.0;   // γ: per memory-type register covered by a spot
  /// Optional per-flat-bit potency scores from the analytical evaluator:
  /// 1.0 when a single-bit corruption of that (memory-type) register
  /// analytically enables the attack, a smaller positive value (e.g. 0.3)
  /// when the bit belongs to a register group whose wholesale corruption
  /// does (a "garbage-latch" target). Spots covering potent bits receive
  /// potency_boost * score — this is the fully "mixed" strategy where the
  /// analytical pass also steers the sampler. Empty = no potency info.
  std::vector<double> memory_bit_potency;
  double potency_boost = 2.0;
  /// Optional per-candidate-center weight boost, indexed by NodeId. The
  /// framework fills it by *enumerating* each candidate spot's direct
  /// register upsets and evaluating their outcome analytically (cheap and
  /// deterministic): spots whose direct flips provably enable the attack get
  /// direct_hit_boost. This is the strongest form of the paper's mixed
  /// strategy — the deterministic memory-type subspace is resolved by
  /// analysis and the sampler merely visits it. Empty = disabled.
  std::vector<double> center_boost;
  /// Weight added per spot-covered combinational gate whose same-cycle
  /// fanout reaches a potent register's D input: transients seeded there can
  /// latch an attack-enabling value even though the spot covers no register
  /// cell (the garbage-latch mechanism through the config-write decode).
  double transit_boost = 10.0;
  /// Defensive mixture weight (Hesterberg): the actual sampling distribution
  /// is (1-ε)·g_weighted + ε·f. The ε·f floor bounds every importance weight
  /// by 1/ε, preventing the heavy-tailed estimates that pure concentration
  /// produces when a rare success lands outside the boosted region.
  double defensive_mix = 0.1;
};

class SamplingModel {
 public:
  SamplingModel(const soc::SocNetlist& soc, const layout::Placement& placement,
                const netlist::UnrolledCone& cone,
                const SignatureTrace& signatures,
                const RegisterCharacterization& characterization,
                const faultsim::AttackModel& attack,
                const SamplingParams& params = {});

  const faultsim::AttackModel& attack() const { return *attack_; }
  const SamplingParams& params() const { return params_; }

  /// Error lifetime L(g) assigned to a cell: a register's own measured
  /// lifetime, or for a combinational gate the maximum over registers in
  /// its same-cycle fanout cone.
  double lifetime_l(netlist::NodeId node) const;

  /// Memory-type boost score of the spot at `center`: one point per
  /// memory-type cone register covered, plus potency_boost * potency score
  /// per potent bit.
  double memory_score(netlist::NodeId center) const;
  /// Spot-covered gates with a combinational path into a potent register's
  /// D input (garbage-latch transit gates).
  int transit_count(netlist::NodeId center) const;

  /// The (unnormalized) sampling weight of candidate `center` in frame
  /// `frame`; 0 if the spot at `center` cannot influence the cones there.
  double center_weight(int frame, netlist::NodeId center) const;

  /// Marginal distribution g_T of the *weighted component* over
  /// t = t_min .. t_max (before defensive mixing).
  const DiscreteDistribution& g_t() const { return g_t_; }

  /// Joint pmf of the full sampling distribution (1-ε)·g_weighted + ε·f over
  /// (t, center); radius excluded — it is uniform under both f and g and
  /// cancels from every weight.
  double g_pmf(int t, netlist::NodeId center) const;

  /// Draws a fault sample from g_{T,P} with its importance weight f/g.
  faultsim::FaultSample sample(Rng& rng) const;

 private:
  int frame_index(int t) const;  // position of t within [t_min, t_max]

  const soc::SocNetlist* soc_;
  const faultsim::AttackModel* attack_;
  SamplingParams params_;
  std::vector<double> lifetime_l_;  // per NodeId
  std::vector<double> mem_score_;   // per NodeId (candidates only)
  std::vector<int> transit_count_;  // per NodeId (candidates only)

  struct Frame {
    std::vector<netlist::NodeId> centers;  // candidates with positive weight
    std::vector<double> weights;           // aligned with centers
    double total_weight = 0;
    DiscreteDistribution conditional;      // over centers (empty if none)
    std::vector<int> center_index;         // NodeId -> index (-1 if absent)
  };
  std::vector<Frame> frames_;  // one per t in [t_min, t_max]
  DiscreteDistribution g_t_;
};

}  // namespace fav::precharac
