// Persistent pre-characterization artifact (the elaboration cache).
//
// Pre-characterization — cone extraction, switching signatures, register
// lifetimes/contamination, and the sampling model's memory-bit potency — is
// the dominant cold-start cost of a campaign and is identical for every
// process evaluating the same configuration (every supervised worker, every
// resume, every parallel campaign). This module serializes that bundle to a
// content-addressed on-disk artifact with the same integrity discipline as
// the FAVJRNL2 journal:
//
//   magic "FAVPCA1\0" | u32 version | u64 fingerprint | u32 section_count
//                     | u32 header CRC32C
//   then per section:  u32 tag | u64 payload_len | payload | u32 CRC32C
//
// The fingerprint is FNV-1a over every knob that changes the bundle
// (benchmark, cone depths, characterization config, netlist shape — see
// PrecharacKey); sampler strategy, seed and sample count are deliberately
// excluded so one artifact serves a whole family of campaigns. Loading
// validates everything: any mismatch classifies as
//   kMiss    — no artifact at the path (first run),
//   kStale   — wrong fingerprint or format version (config changed),
//   kCorrupt — bad magic, truncation, checksum failure (disk damage),
// and the caller degrades to recompute-and-rewrite; a damaged artifact can
// therefore cost time but never correctness. Writes are atomic
// (util/io::atomic_write_file), so readers never observe a torn artifact.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "netlist/cones.h"
#include "precharac/characterize.h"
#include "util/bitvector.h"
#include "util/status.h"

namespace fav::precharac {

/// Current artifact format version; loading any other version is kStale.
constexpr std::uint32_t kArtifactVersion = 1;

/// Everything that changes the pre-characterization bundle. The fingerprint
/// over it is the artifact's content address; campaign knobs that do not
/// affect elaboration (seed, samples, strategy, worker count, and the cache
/// path itself) are deliberately absent.
struct PrecharacKey {
  std::string benchmark;
  std::uint64_t benchmark_cycles = 0;  // golden-run horizon (drives potency)
  int cone_fanin_depth = 0;
  int cone_fanout_depth = 0;
  std::uint64_t precharac_cycles = 0;
  CharacterizationConfig characterization;
  std::uint64_t node_count = 0;  // netlist shape guard
  std::uint64_t total_bits = 0;  // register-map shape guard
};

/// FNV-1a over the canonical rendering of `key`; stable across processes.
std::uint64_t precharac_fingerprint(const PrecharacKey& key);

/// The serialized pre-characterization state: enough to rebuild the cone,
/// signature trace, register characterization and sampling potency without
/// re-running any simulation.
struct PrecharacBundle {
  netlist::NodeId responding_signal = 0;
  std::vector<netlist::ConeFrame> fanin_frames;
  std::vector<netlist::ConeFrame> fanout_frames;
  std::uint64_t signature_cycles = 0;
  std::vector<BitVector> signatures;  // indexed by NodeId
  CharacterizationConfig charac_config;
  std::vector<BitCharacterization> bits;  // indexed by flat bit
  std::vector<char> characterized;        // indexed by flat bit
  std::vector<double> memory_bit_potency;  // indexed by flat bit
};

enum class ArtifactOutcome {
  kHit,      // loaded and fully validated
  kMiss,     // no artifact at the path
  kStale,    // fingerprint or format version mismatch
  kCorrupt,  // bad magic, truncation, or checksum failure
};

const char* artifact_outcome_name(ArtifactOutcome outcome);

struct ArtifactLoad {
  ArtifactOutcome outcome = ArtifactOutcome::kMiss;
  /// Provenance for logs and the run report ("fingerprint mismatch", "CONE
  /// section checksum failure", ...). Empty on a hit.
  std::string detail;
  /// Valid only when outcome == kHit.
  PrecharacBundle bundle;
};

/// Loads and validates the artifact at `path` against `fingerprint`. Never
/// throws on bad bytes: every defect maps to a non-hit outcome.
ArtifactLoad load_artifact(const std::string& path, std::uint64_t fingerprint);

/// Atomically writes the artifact (temp + rename + parent-dir fsync).
/// `context` is a human-readable provenance string stored alongside the
/// sections (the CTX section); it is checksummed but not validated.
Status save_artifact(const std::string& path, std::uint64_t fingerprint,
                     const std::string& context,
                     const PrecharacBundle& bundle);

}  // namespace fav::precharac
