#include "precharac/artifact.h"

#include <filesystem>

#include "util/io.h"

namespace fav::precharac {

namespace {

constexpr char kMagic[8] = {'F', 'A', 'V', 'P', 'C', 'A', '1', '\0'};
// Section tags ("CTX\0", "CONE", "SIGS", "CHAR", "POTN" little-endian).
constexpr std::uint32_t kSecContext = 0x00585443u;
constexpr std::uint32_t kSecCone = 0x454E4F43u;
constexpr std::uint32_t kSecSignatures = 0x53474953u;
constexpr std::uint32_t kSecCharacterization = 0x52414843u;
constexpr std::uint32_t kSecPotency = 0x4E544F50u;
// Garbage artifacts must not trigger huge allocations (journal discipline).
constexpr std::uint64_t kMaxSection = 1ull << 30;

using io::get_le;
using io::put_le;

std::string canonical_key(const PrecharacKey& key) {
  return key.benchmark + "|" + std::to_string(key.benchmark_cycles) + "|" +
         std::to_string(key.cone_fanin_depth) + "|" +
         std::to_string(key.cone_fanout_depth) + "|" +
         std::to_string(key.precharac_cycles) + "|" +
         std::to_string(key.characterization.horizon) + "|" +
         std::to_string(key.characterization.first_cycle) + "|" +
         std::to_string(key.characterization.stride) + "|" +
         std::to_string(key.characterization.lifetime_threshold) + "|" +
         std::to_string(key.characterization.contamination_threshold) + "|" +
         std::to_string(key.node_count) + "|" + std::to_string(key.total_bits);
}

// --- section payload serialization ----------------------------------------

void put_frames(std::string& out, const std::vector<netlist::ConeFrame>& fs) {
  put_le(out, static_cast<std::uint32_t>(fs.size()));
  for (const netlist::ConeFrame& f : fs) {
    put_le(out, static_cast<std::int32_t>(f.frame));
    put_le(out, static_cast<std::uint32_t>(f.gates.size()));
    for (const netlist::NodeId g : f.gates) put_le(out, g);
    put_le(out, static_cast<std::uint32_t>(f.registers.size()));
    for (const netlist::NodeId r : f.registers) put_le(out, r);
  }
}

bool get_frames(const std::string& data, std::size_t* off,
                std::vector<netlist::ConeFrame>* fs) {
  std::uint32_t count = 0;
  if (!get_le(data, off, &count) || count > data.size()) return false;
  fs->resize(count);
  for (netlist::ConeFrame& f : *fs) {
    std::int32_t frame = 0;
    std::uint32_t n = 0;
    if (!get_le(data, off, &frame)) return false;
    f.frame = frame;
    if (!get_le(data, off, &n) || n > data.size()) return false;
    f.gates.resize(n);
    for (netlist::NodeId& g : f.gates) {
      if (!get_le(data, off, &g)) return false;
    }
    if (!get_le(data, off, &n) || n > data.size()) return false;
    f.registers.resize(n);
    for (netlist::NodeId& r : f.registers) {
      if (!get_le(data, off, &r)) return false;
    }
  }
  return true;
}

std::string serialize_cone(const PrecharacBundle& b) {
  std::string out;
  put_le(out, b.responding_signal);
  put_frames(out, b.fanin_frames);
  put_frames(out, b.fanout_frames);
  return out;
}

bool parse_cone(const std::string& data, PrecharacBundle* b) {
  std::size_t off = 0;
  if (!get_le(data, &off, &b->responding_signal)) return false;
  if (!get_frames(data, &off, &b->fanin_frames)) return false;
  if (!get_frames(data, &off, &b->fanout_frames)) return false;
  return off == data.size();
}

std::string serialize_signatures(const PrecharacBundle& b) {
  std::string out;
  put_le(out, b.signature_cycles);
  put_le(out, static_cast<std::uint32_t>(b.signatures.size()));
  for (const BitVector& sig : b.signatures) {
    put_le(out, static_cast<std::uint64_t>(sig.size()));
    put_le(out, static_cast<std::uint32_t>(sig.words().size()));
    for (const std::uint64_t w : sig.words()) put_le(out, w);
  }
  return out;
}

bool parse_signatures(const std::string& data, PrecharacBundle* b) {
  std::size_t off = 0;
  std::uint32_t count = 0;
  if (!get_le(data, &off, &b->signature_cycles)) return false;
  if (!get_le(data, &off, &count) || count > data.size()) return false;
  b->signatures.resize(count);
  for (BitVector& sig : b->signatures) {
    std::uint64_t bits = 0;
    std::uint32_t words = 0;
    if (!get_le(data, &off, &bits) || !get_le(data, &off, &words)) {
      return false;
    }
    if (words != (bits + 63) / 64 || words > data.size()) return false;
    std::vector<std::uint64_t> storage(words);
    for (std::uint64_t& w : storage) {
      if (!get_le(data, &off, &w)) return false;
    }
    sig = BitVector::from_words(std::move(storage),
                                static_cast<std::size_t>(bits));
  }
  return off == data.size();
}

std::string serialize_characterization(const PrecharacBundle& b) {
  std::string out;
  put_le(out, b.charac_config.horizon);
  put_le(out, b.charac_config.first_cycle);
  put_le(out, b.charac_config.stride);
  put_le(out, b.charac_config.lifetime_threshold);
  put_le(out, b.charac_config.contamination_threshold);
  put_le(out, static_cast<std::uint32_t>(b.bits.size()));
  for (std::size_t i = 0; i < b.bits.size(); ++i) {
    put_le(out, b.bits[i].avg_lifetime);
    put_le(out, b.bits[i].max_lifetime);
    put_le(out, b.bits[i].avg_contamination);
    put_le(out, static_cast<std::int32_t>(b.bits[i].samples));
    put_le(out, static_cast<std::uint8_t>(b.characterized[i]));
  }
  return out;
}

bool parse_characterization(const std::string& data, PrecharacBundle* b) {
  std::size_t off = 0;
  std::uint32_t count = 0;
  if (!get_le(data, &off, &b->charac_config.horizon)) return false;
  if (!get_le(data, &off, &b->charac_config.first_cycle)) return false;
  if (!get_le(data, &off, &b->charac_config.stride)) return false;
  if (!get_le(data, &off, &b->charac_config.lifetime_threshold)) return false;
  if (!get_le(data, &off, &b->charac_config.contamination_threshold)) {
    return false;
  }
  if (!get_le(data, &off, &count) || count > data.size()) return false;
  b->bits.resize(count);
  b->characterized.resize(count);
  for (std::uint32_t i = 0; i < count; ++i) {
    std::int32_t samples = 0;
    std::uint8_t done = 0;
    if (!get_le(data, &off, &b->bits[i].avg_lifetime) ||
        !get_le(data, &off, &b->bits[i].max_lifetime) ||
        !get_le(data, &off, &b->bits[i].avg_contamination) ||
        !get_le(data, &off, &samples) || !get_le(data, &off, &done)) {
      return false;
    }
    b->bits[i].samples = samples;
    b->characterized[i] = static_cast<char>(done);
  }
  return off == data.size();
}

std::string serialize_potency(const PrecharacBundle& b) {
  std::string out;
  put_le(out, static_cast<std::uint32_t>(b.memory_bit_potency.size()));
  for (const double p : b.memory_bit_potency) put_le(out, p);
  return out;
}

bool parse_potency(const std::string& data, PrecharacBundle* b) {
  std::size_t off = 0;
  std::uint32_t count = 0;
  if (!get_le(data, &off, &count) || count > data.size()) return false;
  b->memory_bit_potency.resize(count);
  for (double& p : b->memory_bit_potency) {
    if (!get_le(data, &off, &p)) return false;
  }
  return off == data.size();
}

void append_section(std::string& out, std::uint32_t tag,
                    const std::string& payload) {
  put_le(out, tag);
  put_le(out, static_cast<std::uint64_t>(payload.size()));
  out += payload;
  put_le(out, io::crc32c(payload.data(), payload.size()));
}

ArtifactLoad fail(ArtifactOutcome outcome, std::string detail) {
  ArtifactLoad load;
  load.outcome = outcome;
  load.detail = std::move(detail);
  return load;
}

}  // namespace

const char* artifact_outcome_name(ArtifactOutcome outcome) {
  switch (outcome) {
    case ArtifactOutcome::kHit: return "hit";
    case ArtifactOutcome::kMiss: return "miss";
    case ArtifactOutcome::kStale: return "stale";
    case ArtifactOutcome::kCorrupt: return "corrupt";
  }
  return "unknown";
}

std::uint64_t precharac_fingerprint(const PrecharacKey& key) {
  const std::string id = canonical_key(key);
  return io::fnv1a64(id.data(), id.size());
}

ArtifactLoad load_artifact(const std::string& path,
                           std::uint64_t fingerprint) {
  {
    std::error_code ec;
    if (!std::filesystem::exists(path, ec)) {
      return fail(ArtifactOutcome::kMiss, "no artifact at " + path);
    }
  }
  Result<std::string> contents = io::read_file(path);
  if (!contents.is_ok()) {
    return fail(ArtifactOutcome::kMiss,
                "artifact unreadable: " + contents.status().message());
  }
  const std::string& data = contents.value();

  // Header. The version gate runs before the header checksum so a future
  // format reads as stale (recompute), not as corruption.
  std::size_t off = 0;
  if (data.size() < sizeof(kMagic) ||
      std::memcmp(data.data(), kMagic, sizeof(kMagic)) != 0) {
    return fail(ArtifactOutcome::kCorrupt, "bad artifact magic in " + path);
  }
  off = sizeof(kMagic);
  std::uint32_t version = 0, section_count = 0, header_crc = 0;
  std::uint64_t file_fingerprint = 0;
  const std::size_t header_start = off;
  if (!get_le(data, &off, &version)) {
    return fail(ArtifactOutcome::kCorrupt, "truncated artifact header");
  }
  if (version != kArtifactVersion) {
    return fail(ArtifactOutcome::kStale,
                "artifact format version " + std::to_string(version) +
                    " (this build reads " +
                    std::to_string(kArtifactVersion) + ")");
  }
  if (!get_le(data, &off, &file_fingerprint) ||
      !get_le(data, &off, &section_count)) {
    return fail(ArtifactOutcome::kCorrupt, "truncated artifact header");
  }
  const std::size_t header_len = off - header_start;
  if (!get_le(data, &off, &header_crc) ||
      header_crc != io::crc32c(data.data() + header_start, header_len)) {
    return fail(ArtifactOutcome::kCorrupt,
                "artifact header checksum failure in " + path);
  }
  if (file_fingerprint != fingerprint) {
    return fail(ArtifactOutcome::kStale,
                "fingerprint mismatch (artifact was elaborated for a "
                "different configuration)");
  }

  // Sections: every payload is checksummed; anything short is corruption
  // (artifact writes are atomic, so a torn file is disk damage, not a crash
  // artifact like a torn journal tail).
  ArtifactLoad load;
  load.outcome = ArtifactOutcome::kHit;
  bool have_cone = false, have_sigs = false, have_charac = false,
       have_potency = false;
  for (std::uint32_t s = 0; s < section_count; ++s) {
    std::uint32_t tag = 0, crc = 0;
    std::uint64_t len = 0;
    if (!get_le(data, &off, &tag) || !get_le(data, &off, &len) ||
        len > kMaxSection || data.size() - off < len) {
      return fail(ArtifactOutcome::kCorrupt,
                  "truncated artifact section " + std::to_string(s));
    }
    const std::string payload = data.substr(off, len);
    off += len;
    if (!get_le(data, &off, &crc) ||
        crc != io::crc32c(payload.data(), payload.size())) {
      return fail(ArtifactOutcome::kCorrupt,
                  "artifact section " + std::to_string(s) +
                      " checksum failure");
    }
    bool parsed = true;
    switch (tag) {
      case kSecContext:
        break;  // provenance only; checksummed but not interpreted
      case kSecCone:
        parsed = parse_cone(payload, &load.bundle);
        have_cone = parsed;
        break;
      case kSecSignatures:
        parsed = parse_signatures(payload, &load.bundle);
        have_sigs = parsed;
        break;
      case kSecCharacterization:
        parsed = parse_characterization(payload, &load.bundle);
        have_charac = parsed;
        break;
      case kSecPotency:
        parsed = parse_potency(payload, &load.bundle);
        have_potency = parsed;
        break;
      default:
        return fail(ArtifactOutcome::kCorrupt,
                    "unknown artifact section tag " + std::to_string(tag));
    }
    if (!parsed) {
      return fail(ArtifactOutcome::kCorrupt,
                  "artifact section " + std::to_string(s) +
                      " payload malformed");
    }
  }
  if (off != data.size()) {
    return fail(ArtifactOutcome::kCorrupt,
                "trailing bytes after the last artifact section");
  }
  if (!have_cone || !have_sigs || !have_charac || !have_potency) {
    return fail(ArtifactOutcome::kCorrupt,
                "artifact is missing a required section");
  }
  return load;
}

Status save_artifact(const std::string& path, std::uint64_t fingerprint,
                     const std::string& context,
                     const PrecharacBundle& bundle) {
  std::string out(kMagic, sizeof(kMagic));
  std::string header;
  put_le(header, kArtifactVersion);
  put_le(header, fingerprint);
  put_le(header, static_cast<std::uint32_t>(5));  // section count
  out += header;
  put_le(out, io::crc32c(header.data(), header.size()));
  append_section(out, kSecContext, context);
  append_section(out, kSecCone, serialize_cone(bundle));
  append_section(out, kSecSignatures, serialize_signatures(bundle));
  append_section(out, kSecCharacterization,
                 serialize_characterization(bundle));
  append_section(out, kSecPotency, serialize_potency(bundle));
  return io::atomic_write_file(path, out);
}

}  // namespace fav::precharac
