// Graphviz DOT export for debugging and documentation.
#pragma once

#include <ostream>

#include "netlist/netlist.h"

namespace fav::netlist {

/// Writes the netlist as a DOT digraph. DFFs are drawn as boxes, primary
/// inputs as triangles, gates as ellipses labelled with their cell type.
void write_dot(const Netlist& nl, std::ostream& os,
               const std::string& graph_name = "netlist");

}  // namespace fav::netlist
