// Two-valued, levelized (oblivious) logic simulator over a Netlist.
//
// This is the zero-delay gate-level simulator used for:
//  * switching-signature recording during pre-characterization,
//  * golden per-node values inside the fault-injection cycle (the timing
//    simulator needs side-input values for logical masking),
//  * lock-step equivalence checks against the behavioural RTL model.
#pragma once

#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"

namespace fav::netlist {

class LogicSimulator {
 public:
  explicit LogicSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Direct state access (registers may be overwritten to load checkpoints
  /// or to inject bit errors back into the sequential state).
  bool value(NodeId id) const;
  void set_register(NodeId dff, bool value);
  void set_input(NodeId input, bool value);
  void set_input(const std::string& name, bool value);

  /// Recomputes all combinational nodes from current inputs + registers.
  void evaluate_comb();

  /// Clock edge: latches every DFF's D value into its state. Callers must
  /// have run evaluate_comb() since the last input/state change.
  void clock_edge();

  /// Convenience: evaluate_comb() then clock_edge().
  void step();

  /// Reads a named output net (after evaluate_comb()).
  bool output(const std::string& name) const;

  /// Snapshot of all DFF states in Netlist::dffs() order.
  std::vector<bool> register_state() const;
  void load_register_state(const std::vector<bool>& state);

 private:
  const Netlist* nl_;
  std::vector<char> values_;  // char (not vector<bool>) for fast access
};

}  // namespace fav::netlist
