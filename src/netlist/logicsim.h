// Two-valued, levelized (oblivious) logic simulator over a Netlist.
//
// This is the zero-delay gate-level simulator used for:
//  * switching-signature recording during pre-characterization,
//  * golden per-node values inside the fault-injection cycle (the timing
//    simulator needs side-input values for logical masking),
//  * lock-step equivalence checks against the behavioural RTL model.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/netlist.h"

namespace fav::netlist {

class LogicSimulator {
 public:
  explicit LogicSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Direct state access (registers may be overwritten to load checkpoints
  /// or to inject bit errors back into the sequential state).
  bool value(NodeId id) const;
  void set_register(NodeId dff, bool value);
  void set_input(NodeId input, bool value);
  void set_input(const std::string& name, bool value);

  /// Recomputes all combinational nodes from current inputs + registers.
  void evaluate_comb();

  /// Clock edge: latches every DFF's D value into its state. Callers must
  /// have run evaluate_comb() since the last input/state change.
  void clock_edge();

  /// Convenience: evaluate_comb() then clock_edge().
  void step();

  /// Reads a named output net (after evaluate_comb()).
  bool output(const std::string& name) const;

  /// Snapshot of all DFF states in Netlist::dffs() order.
  std::vector<bool> register_state() const;
  void load_register_state(const std::vector<bool>& state);

 private:
  const Netlist* nl_;
  std::vector<char> values_;  // char (not vector<bool>) for fast access
};

/// 64-lane bit-parallel logic simulator (the PPSFP word trick): every node
/// holds a uint64_t whose bit `l` is that node's value in lane `l`, so one
/// topological sweep evaluates 64 independent samples at once. Lanes start
/// identical (broadcast_from a settled scalar simulator) and diverge only
/// where per-lane inputs or register upsets are forced.
class WordSimulator {
 public:
  explicit WordSimulator(const Netlist& nl);

  const Netlist& netlist() const { return *nl_; }

  /// Whole-word access: bit l of the word is lane l's value.
  std::uint64_t word(NodeId id) const;
  /// Single-lane read (lane in [0, 64)).
  bool value(NodeId id, int lane) const;

  void set_register_word(NodeId dff, std::uint64_t word);
  void set_input_word(NodeId input, std::uint64_t word);
  void set_register_lane(NodeId dff, int lane, bool value);
  void set_input_lane(NodeId input, int lane, bool value);

  /// Copies a settled scalar simulator's state into every lane: each node's
  /// word becomes all-ones or all-zeros according to the scalar value.
  void broadcast_from(const LogicSimulator& scalar);

  /// Recomputes all combinational nodes from current inputs + registers,
  /// word-wise (all 64 lanes per gate evaluation).
  void evaluate_comb();

  /// Clock edge: latches every DFF's D word into its state. Callers must
  /// have run evaluate_comb() since the last input/state change.
  void clock_edge();

  /// Convenience: evaluate_comb() then clock_edge().
  void step();

 private:
  const Netlist* nl_;
  std::vector<std::uint64_t> values_;
  std::vector<std::uint64_t> latch_scratch_;  // reused by clock_edge()
};

}  // namespace fav::netlist
