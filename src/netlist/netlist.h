// Structural gate-level netlist IR.
//
// A Netlist is a DAG of cells (plus DFFs, which break combinational cycles):
// each node produces exactly one net, identified by the node id. DFF nodes
// represent the register *output*; their single fanin is the D input net.
// Primary outputs are named references to existing nets.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "netlist/cell.h"

namespace fav::netlist {

using NodeId = std::uint32_t;
constexpr NodeId kInvalidNode = 0xFFFFFFFFu;

struct Node {
  CellType type = CellType::kBuf;
  std::vector<NodeId> fanins;
  std::string name;  // optional; DFFs and PIs always named
};

class Netlist {
 public:
  /// --- construction ---------------------------------------------------
  NodeId add_input(std::string name);
  NodeId add_const(bool value);
  /// Adds a combinational gate. Fanins must already exist.
  NodeId add_gate(CellType type, std::vector<NodeId> fanins,
                  std::string name = {});
  /// Adds a DFF whose D input will be connected later via connect_dff.
  /// Useful because register feedback loops need forward references.
  NodeId add_dff(std::string name);
  void connect_dff(NodeId dff, NodeId d_input);
  /// Declares `node`'s net as a named primary output.
  void set_output(std::string name, NodeId node);

  /// --- structure queries ----------------------------------------------
  std::size_t node_count() const { return nodes_.size(); }
  const Node& node(NodeId id) const;
  bool is_dff(NodeId id) const { return node(id).type == CellType::kDff; }
  bool is_comb_gate(NodeId id) const {
    return is_combinational_gate(node(id).type);
  }

  const std::vector<NodeId>& inputs() const { return inputs_; }
  const std::vector<NodeId>& dffs() const { return dffs_; }
  const std::vector<std::pair<std::string, NodeId>>& outputs() const {
    return outputs_;
  }
  std::size_t gate_count() const { return gate_count_; }

  /// Looks up a node by name (inputs, DFFs, and named gates/outputs).
  std::optional<NodeId> find(const std::string& name) const;
  NodeId find_or_throw(const std::string& name) const;

  /// --- derived structure (built lazily, invalidated by mutation) -------
  /// Fanout edges: for each node, the list of (consumer, pin) pairs.
  struct FanoutEdge {
    NodeId consumer;
    int pin;
  };
  const std::vector<std::vector<FanoutEdge>>& fanouts() const;

  /// Topological order of combinational gates (sources excluded). Every
  /// gate appears after all of its fanins. Throws CheckError if a
  /// combinational cycle exists.
  const std::vector<NodeId>& topo_order() const;

  /// Logic level of each node: 0 for sources, 1 + max(fanin level) for gates.
  const std::vector<int>& levels() const;
  int max_level() const;

  /// Checks arity, dangling DFF inputs, and combinational cycles.
  /// Throws CheckError describing the first violation found.
  void validate() const;

 private:
  NodeId add_node(Node n);
  void invalidate_caches();
  void build_derived() const;

  std::vector<Node> nodes_;
  std::vector<NodeId> inputs_;
  std::vector<NodeId> dffs_;
  std::vector<std::pair<std::string, NodeId>> outputs_;
  std::unordered_map<std::string, NodeId> by_name_;
  std::size_t gate_count_ = 0;

  // caches
  mutable bool derived_valid_ = false;
  mutable std::vector<std::vector<FanoutEdge>> fanouts_;
  mutable std::vector<NodeId> topo_;
  mutable std::vector<int> levels_;
};

}  // namespace fav::netlist
