#include "netlist/cones.h"

#include <algorithm>
#include <deque>

namespace fav::netlist {

namespace {

struct Visit {
  NodeId node;
  int frame;
};

}  // namespace

UnrolledCone::UnrolledCone(const Netlist& nl, NodeId responding_signal,
                           int fanin_depth, int fanout_depth)
    : rs_(responding_signal), fanout_depth_(fanout_depth) {
  FAV_ENSURE(fanin_depth >= 0);
  FAV_ENSURE(fanout_depth >= 0);
  FAV_ENSURE_MSG(responding_signal < nl.node_count(),
                "responding signal id out of range");

  fanin_.resize(static_cast<std::size_t>(fanin_depth) + 1);
  for (int i = 0; i <= fanin_depth; ++i) fanin_[static_cast<std::size_t>(i)].frame = i;
  fanout_.resize(static_cast<std::size_t>(fanout_depth));
  for (int i = 0; i < fanout_depth; ++i) {
    fanout_[static_cast<std::size_t>(i)].frame = -(i + 1);
  }
  members_.resize(static_cast<std::size_t>(fanin_depth + fanout_depth) + 1);

  extract_fanin(nl, fanin_depth);
  extract_fanout(nl, fanout_depth);

  auto sort_frame = [](ConeFrame& f) {
    std::sort(f.gates.begin(), f.gates.end());
    std::sort(f.registers.begin(), f.registers.end());
  };
  for (auto& f : fanin_) sort_frame(f);
  for (auto& f : fanout_) sort_frame(f);
}

UnrolledCone::UnrolledCone(NodeId responding_signal,
                           std::vector<ConeFrame> fanin_frames,
                           std::vector<ConeFrame> fanout_frames)
    : rs_(responding_signal),
      fanin_(std::move(fanin_frames)),
      fanout_(std::move(fanout_frames)) {
  fanout_depth_ = static_cast<int>(fanout_.size());
  FAV_ENSURE_MSG(!fanin_.empty(), "cone needs at least frame 0");
  for (std::size_t i = 0; i < fanin_.size(); ++i) {
    FAV_ENSURE_MSG(fanin_[i].frame == static_cast<int>(i),
                  "fanin frame order violated at index " << i);
  }
  for (std::size_t i = 0; i < fanout_.size(); ++i) {
    FAV_ENSURE_MSG(fanout_[i].frame == -static_cast<int>(i) - 1,
                  "fanout frame order violated at index " << i);
  }
  members_.resize(fanin_.size() + fanout_.size());
  auto index = [&](const ConeFrame& f) {
    return static_cast<std::size_t>(f.frame + fanout_depth_);
  };
  for (const auto& frames : {&fanin_, &fanout_}) {
    for (const ConeFrame& f : *frames) {
      members_[index(f)].insert(f.gates.begin(), f.gates.end());
      members_[index(f)].insert(f.registers.begin(), f.registers.end());
    }
  }
}

const ConeFrame& UnrolledCone::frame(int frame_index) const {
  FAV_ENSURE_MSG(has_frame(frame_index), "frame " << frame_index << " not extracted");
  if (frame_index >= 0) return fanin_[static_cast<std::size_t>(frame_index)];
  return fanout_[static_cast<std::size_t>(-frame_index - 1)];
}

bool UnrolledCone::has_frame(int frame_index) const {
  return frame_index >= -fanout_depth_ &&
         frame_index <= static_cast<int>(fanin_.size()) - 1;
}

bool UnrolledCone::contains(int frame_index, NodeId node) const {
  if (!has_frame(frame_index)) return false;
  const auto offset = static_cast<std::size_t>(frame_index + fanout_depth_);
  return members_[offset].count(node) > 0;
}

std::vector<NodeId> UnrolledCone::all_fanin_registers() const {
  std::unordered_set<NodeId> seen;
  for (const auto& f : fanin_) seen.insert(f.registers.begin(), f.registers.end());
  std::vector<NodeId> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

std::vector<NodeId> UnrolledCone::all_fanin_gates() const {
  std::unordered_set<NodeId> seen;
  for (const auto& f : fanin_) seen.insert(f.gates.begin(), f.gates.end());
  std::vector<NodeId> out(seen.begin(), seen.end());
  std::sort(out.begin(), out.end());
  return out;
}

void UnrolledCone::extract_fanin(const Netlist& nl, int depth) {
  std::deque<Visit> queue;
  queue.push_back({rs_, 0});
  auto offset = [&](int frame) {
    return static_cast<std::size_t>(frame + fanout_depth_);
  };

  while (!queue.empty()) {
    const auto [id, frame] = queue.front();
    queue.pop_front();
    if (!members_[offset(frame)].insert(id).second) continue;

    const Node& n = nl.node(id);
    auto& cf = fanin_[static_cast<std::size_t>(frame)];
    if (n.type == CellType::kDff) {
      cf.registers.push_back(id);
      // A fault stored in this DFF at `frame` was injected into its D-input
      // logic one cycle earlier.
      if (frame + 1 <= depth) {
        for (NodeId f : n.fanins) queue.push_back({f, frame + 1});
      }
    } else if (is_combinational_gate(n.type)) {
      cf.gates.push_back(id);
      for (NodeId f : n.fanins) queue.push_back({f, frame});
    }
    // primary inputs / constants terminate the traversal
  }
}

void UnrolledCone::extract_fanout(const Netlist& nl, int depth) {
  const auto& fanouts = nl.fanouts();
  std::deque<Visit> queue;
  queue.push_back({rs_, 0});
  // Forward traversal needs its own visited set: a node can legitimately be
  // in both the fanin and the fanout cone of the same frame (reconvergence
  // through the responding signal), and frame-0 membership was already
  // claimed by extract_fanin for the fanin side.
  std::vector<std::unordered_set<NodeId>> seen(
      static_cast<std::size_t>(depth) + 1);

  while (!queue.empty()) {
    const auto [id, frame] = queue.front();
    queue.pop_front();
    if (!seen[static_cast<std::size_t>(-frame)].insert(id).second) continue;

    for (const auto& e : fanouts[id]) {
      const Node& c = nl.node(e.consumer);
      if (c.type == CellType::kDff) {
        // Value latched at the end of `frame` influences the next cycle.
        const int next = frame - 1;
        if (next < -depth) continue;
        auto& cf = fanout_[static_cast<std::size_t>(-next - 1)];
        if (members_[static_cast<std::size_t>(next + fanout_depth_)]
                .insert(e.consumer)
                .second) {
          cf.registers.push_back(e.consumer);
        }
        queue.push_back({e.consumer, next});
      } else if (is_combinational_gate(c.type)) {
        if (frame < 0) {
          auto& cf = fanout_[static_cast<std::size_t>(-frame - 1)];
          if (members_[static_cast<std::size_t>(frame + fanout_depth_)]
                  .insert(e.consumer)
                  .second) {
            cf.gates.push_back(e.consumer);
          }
        } else {
          // Combinational fanout inside the observation cycle: timing
          // distance is still 0, so it joins frame 0 (shared with fanin).
          if (members_[static_cast<std::size_t>(fanout_depth_)]
                  .insert(e.consumer)
                  .second) {
            fanin_[0].gates.push_back(e.consumer);
          }
        }
        queue.push_back({e.consumer, frame});
      }
    }
  }
}

}  // namespace fav::netlist
