// Standard-cell vocabulary of the structural netlist IR.
//
// The library is deliberately small (the set a technology mapper would emit
// for a control-dominated block): 1- and 2-input logic, a 2:1 mux, constants,
// and a D flip-flop. Wider functions are composed by the generator layer.
#pragma once

#include <cstdint>
#include <span>
#include <string_view>

#include "util/check.h"

namespace fav::netlist {

enum class CellType : std::uint8_t {
  kInput,   // primary input, no fanin
  kConst0,  // constant 0
  kConst1,  // constant 1
  kBuf,     // 1 fanin
  kNot,     // 1 fanin
  kAnd,     // 2 fanins
  kOr,      // 2 fanins
  kNand,    // 2 fanins
  kNor,     // 2 fanins
  kXor,     // 2 fanins
  kXnor,    // 2 fanins
  kMux,     // 3 fanins: [sel, a, b] -> sel ? b : a
  kDff,     // 1 fanin: D input; output is the register state
};

/// Number of fanins the cell type requires.
constexpr int cell_arity(CellType t) {
  switch (t) {
    case CellType::kInput:
    case CellType::kConst0:
    case CellType::kConst1:
      return 0;
    case CellType::kBuf:
    case CellType::kNot:
    case CellType::kDff:
      return 1;
    case CellType::kAnd:
    case CellType::kOr:
    case CellType::kNand:
    case CellType::kNor:
    case CellType::kXor:
    case CellType::kXnor:
      return 2;
    case CellType::kMux:
      return 3;
  }
  return -1;
}

constexpr bool is_combinational_gate(CellType t) {
  return t != CellType::kInput && t != CellType::kDff &&
         t != CellType::kConst0 && t != CellType::kConst1;
}

constexpr bool is_source(CellType t) {
  return t == CellType::kInput || t == CellType::kDff ||
         t == CellType::kConst0 || t == CellType::kConst1;
}

constexpr std::string_view cell_name(CellType t) {
  switch (t) {
    case CellType::kInput: return "INPUT";
    case CellType::kConst0: return "CONST0";
    case CellType::kConst1: return "CONST1";
    case CellType::kBuf: return "BUF";
    case CellType::kNot: return "NOT";
    case CellType::kAnd: return "AND";
    case CellType::kOr: return "OR";
    case CellType::kNand: return "NAND";
    case CellType::kNor: return "NOR";
    case CellType::kXor: return "XOR";
    case CellType::kXnor: return "XNOR";
    case CellType::kMux: return "MUX";
    case CellType::kDff: return "DFF";
  }
  return "?";
}

/// Evaluates a combinational cell on concrete input values.
/// `ins` must have exactly cell_arity(t) entries; not valid for sources.
inline bool eval_cell(CellType t, std::span<const bool> ins) {
  FAV_ENSURE_MSG(static_cast<int>(ins.size()) == cell_arity(t),
                "arity mismatch for " << cell_name(t));
  switch (t) {
    case CellType::kBuf: return ins[0];
    case CellType::kNot: return !ins[0];
    case CellType::kAnd: return ins[0] && ins[1];
    case CellType::kOr: return ins[0] || ins[1];
    case CellType::kNand: return !(ins[0] && ins[1]);
    case CellType::kNor: return !(ins[0] || ins[1]);
    case CellType::kXor: return ins[0] != ins[1];
    case CellType::kXnor: return ins[0] == ins[1];
    case CellType::kMux: return ins[0] ? ins[2] : ins[1];
    default:
      FAV_ENSURE_MSG(false, "eval_cell on non-combinational " << cell_name(t));
  }
  return false;
}

/// Evaluates a combinational cell on 64 independent input lanes at once:
/// bit i of every operand word is lane i's value, and bit i of the result is
/// lane i's output (the PPSFP word trick — one gate evaluation per word
/// instead of per lane). `ins` must have exactly cell_arity(t) entries.
inline std::uint64_t eval_cell_words(CellType t,
                                     std::span<const std::uint64_t> ins) {
  FAV_ENSURE_MSG(static_cast<int>(ins.size()) == cell_arity(t),
                "arity mismatch for " << cell_name(t));
  switch (t) {
    case CellType::kBuf: return ins[0];
    case CellType::kNot: return ~ins[0];
    case CellType::kAnd: return ins[0] & ins[1];
    case CellType::kOr: return ins[0] | ins[1];
    case CellType::kNand: return ~(ins[0] & ins[1]);
    case CellType::kNor: return ~(ins[0] | ins[1]);
    case CellType::kXor: return ins[0] ^ ins[1];
    case CellType::kXnor: return ~(ins[0] ^ ins[1]);
    case CellType::kMux: return (ins[0] & ins[2]) | (~ins[0] & ins[1]);
    default:
      FAV_ENSURE_MSG(false,
                     "eval_cell_words on non-combinational " << cell_name(t));
  }
  return 0;
}

/// True if input position `pin` holding value `v` forces the output of the
/// cell regardless of the other inputs (used for logical-masking analysis in
/// the gate-level transient propagation).
inline bool is_controlling_value(CellType t, int pin, bool v) {
  switch (t) {
    case CellType::kAnd:
    case CellType::kNand:
      return v == false;
    case CellType::kOr:
    case CellType::kNor:
      return v == true;
    case CellType::kMux:
      // Data pins never control alone; the select pin picks a side but the
      // output still depends on that side's data, so nothing controls.
      (void)pin;
      return false;
    default:
      return false;  // BUF/NOT/XOR/XNOR have no controlling values
  }
}

}  // namespace fav::netlist
