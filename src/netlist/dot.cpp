#include "netlist/dot.h"

namespace fav::netlist {

void write_dot(const Netlist& nl, std::ostream& os,
               const std::string& graph_name) {
  os << "digraph " << graph_name << " {\n  rankdir=LR;\n";
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    const Node& n = nl.node(id);
    const char* shape = "ellipse";
    if (n.type == CellType::kDff) shape = "box";
    if (n.type == CellType::kInput) shape = "invtriangle";
    os << "  n" << id << " [shape=" << shape << ", label=\""
       << cell_name(n.type);
    if (!n.name.empty()) os << "\\n" << n.name;
    os << "\"];\n";
  }
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    for (NodeId f : nl.node(id).fanins) {
      os << "  n" << f << " -> n" << id << ";\n";
    }
  }
  for (const auto& [name, id] : nl.outputs()) {
    os << "  out_" << name << " [shape=plaintext, label=\"" << name
       << "\"];\n  n" << id << " -> out_" << name << ";\n";
  }
  os << "}\n";
}

}  // namespace fav::netlist
