// Structural Verilog export.
//
// Emits the netlist as a synthesizable structural Verilog-2001 module:
// primary inputs and named outputs become ports, combinational cells become
// continuous assigns, and DFFs a single posedge-clocked always block. This
// is the interchange point with a conventional EDA flow (e.g. to re-run the
// fault analysis netlist in a commercial simulator, or to feed it to
// synthesis for area numbers).
#pragma once

#include <ostream>
#include <string>

#include "netlist/netlist.h"

namespace fav::netlist {

/// Writes `nl` as a Verilog module named `module_name`. Net names are
/// `n<id>`; ports keep their (sanitized) design names, with the original
/// name in a trailing comment where sanitization changed it.
void write_verilog(const Netlist& nl, std::ostream& os,
                   const std::string& module_name = "fav_top");

/// Sanitizes an arbitrary design name into a legal Verilog identifier
/// (alphanumerics and '_' only; leading digit prefixed). Exposed for tests.
std::string verilog_identifier(const std::string& name);

}  // namespace fav::netlist
