#include "netlist/logicsim.h"

namespace fav::netlist {

LogicSimulator::LogicSimulator(const Netlist& nl)
    : nl_(&nl), values_(nl.node_count(), 0) {
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == CellType::kConst1) values_[id] = 1;
  }
  nl.topo_order();  // force cycle check up-front
}

bool LogicSimulator::value(NodeId id) const {
  FAV_ENSURE(id < values_.size());
  return values_[id] != 0;
}

void LogicSimulator::set_register(NodeId dff, bool value) {
  FAV_ENSURE_MSG(nl_->is_dff(dff), "node is not a DFF");
  values_[dff] = value ? 1 : 0;
}

void LogicSimulator::set_input(NodeId input, bool value) {
  FAV_ENSURE_MSG(nl_->node(input).type == CellType::kInput,
                "node is not a primary input");
  values_[input] = value ? 1 : 0;
}

void LogicSimulator::set_input(const std::string& name, bool value) {
  set_input(nl_->find_or_throw(name), value);
}

void LogicSimulator::evaluate_comb() {
  for (NodeId id : nl_->topo_order()) {
    const Node& n = nl_->node(id);
    bool ins[3];
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      ins[i] = values_[n.fanins[i]] != 0;
    }
    values_[id] = eval_cell(n.type, {ins, n.fanins.size()}) ? 1 : 0;
  }
}

void LogicSimulator::clock_edge() {
  // Two passes so that DFF-to-DFF chains latch the pre-edge values.
  std::vector<char> next(nl_->dffs().size());
  std::size_t k = 0;
  for (NodeId dff : nl_->dffs()) {
    const Node& n = nl_->node(dff);
    FAV_ENSURE_MSG(!n.fanins.empty(), "DFF '" << n.name << "' has no D input");
    next[k++] = values_[n.fanins[0]];
  }
  k = 0;
  for (NodeId dff : nl_->dffs()) values_[dff] = next[k++];
}

void LogicSimulator::step() {
  evaluate_comb();
  clock_edge();
}

bool LogicSimulator::output(const std::string& name) const {
  return value(nl_->find_or_throw(name));
}

std::vector<bool> LogicSimulator::register_state() const {
  std::vector<bool> out;
  out.reserve(nl_->dffs().size());
  for (NodeId dff : nl_->dffs()) out.push_back(values_[dff] != 0);
  return out;
}

void LogicSimulator::load_register_state(const std::vector<bool>& state) {
  FAV_ENSURE_MSG(state.size() == nl_->dffs().size(),
                "register state size mismatch");
  std::size_t k = 0;
  for (NodeId dff : nl_->dffs()) values_[dff] = state[k++] ? 1 : 0;
}

WordSimulator::WordSimulator(const Netlist& nl)
    : nl_(&nl), values_(nl.node_count(), 0) {
  for (NodeId id = 0; id < nl.node_count(); ++id) {
    if (nl.node(id).type == CellType::kConst1) values_[id] = ~std::uint64_t{0};
  }
  nl.topo_order();  // force cycle check up-front
}

std::uint64_t WordSimulator::word(NodeId id) const {
  FAV_ENSURE(id < values_.size());
  return values_[id];
}

bool WordSimulator::value(NodeId id, int lane) const {
  FAV_ENSURE(id < values_.size());
  FAV_ENSURE(lane >= 0 && lane < 64);
  return (values_[id] >> lane) & 1u;
}

void WordSimulator::set_register_word(NodeId dff, std::uint64_t word) {
  FAV_ENSURE_MSG(nl_->is_dff(dff), "node is not a DFF");
  values_[dff] = word;
}

void WordSimulator::set_input_word(NodeId input, std::uint64_t word) {
  FAV_ENSURE_MSG(nl_->node(input).type == CellType::kInput,
                "node is not a primary input");
  values_[input] = word;
}

void WordSimulator::set_register_lane(NodeId dff, int lane, bool value) {
  FAV_ENSURE_MSG(nl_->is_dff(dff), "node is not a DFF");
  FAV_ENSURE(lane >= 0 && lane < 64);
  const std::uint64_t mask = std::uint64_t{1} << lane;
  if (value) {
    values_[dff] |= mask;
  } else {
    values_[dff] &= ~mask;
  }
}

void WordSimulator::set_input_lane(NodeId input, int lane, bool value) {
  FAV_ENSURE_MSG(nl_->node(input).type == CellType::kInput,
                "node is not a primary input");
  FAV_ENSURE(lane >= 0 && lane < 64);
  const std::uint64_t mask = std::uint64_t{1} << lane;
  if (value) {
    values_[input] |= mask;
  } else {
    values_[input] &= ~mask;
  }
}

void WordSimulator::broadcast_from(const LogicSimulator& scalar) {
  FAV_ENSURE_MSG(nl_ == &scalar.netlist(), "netlist mismatch in broadcast");
  for (NodeId id = 0; id < nl_->node_count(); ++id) {
    values_[id] = scalar.value(id) ? ~std::uint64_t{0} : 0;
  }
}

void WordSimulator::evaluate_comb() {
  for (NodeId id : nl_->topo_order()) {
    const Node& n = nl_->node(id);
    std::uint64_t ins[3];
    for (std::size_t i = 0; i < n.fanins.size(); ++i) {
      ins[i] = values_[n.fanins[i]];
    }
    values_[id] = eval_cell_words(n.type, {ins, n.fanins.size()});
  }
}

void WordSimulator::clock_edge() {
  // Two passes so that DFF-to-DFF chains latch the pre-edge values.
  latch_scratch_.clear();
  for (NodeId dff : nl_->dffs()) {
    const Node& n = nl_->node(dff);
    FAV_ENSURE_MSG(!n.fanins.empty(), "DFF '" << n.name << "' has no D input");
    latch_scratch_.push_back(values_[n.fanins[0]]);
  }
  std::size_t k = 0;
  for (NodeId dff : nl_->dffs()) values_[dff] = latch_scratch_[k++];
}

void WordSimulator::step() {
  evaluate_comb();
  clock_edge();
}

}  // namespace fav::netlist
