#include "netlist/netlist.h"

#include <algorithm>
#include <deque>

namespace fav::netlist {

NodeId Netlist::add_input(std::string name) {
  FAV_ENSURE_MSG(!name.empty(), "primary inputs must be named");
  Node n;
  n.type = CellType::kInput;
  n.name = std::move(name);
  const NodeId id = add_node(std::move(n));
  inputs_.push_back(id);
  return id;
}

NodeId Netlist::add_const(bool value) {
  Node n;
  n.type = value ? CellType::kConst1 : CellType::kConst0;
  return add_node(std::move(n));
}

NodeId Netlist::add_gate(CellType type, std::vector<NodeId> fanins,
                         std::string name) {
  FAV_ENSURE_MSG(is_combinational_gate(type),
                "add_gate requires a combinational type, got "
                    << cell_name(type));
  FAV_ENSURE_MSG(static_cast<int>(fanins.size()) == cell_arity(type),
                cell_name(type) << " needs " << cell_arity(type)
                                << " fanins, got " << fanins.size());
  for (NodeId f : fanins) {
    FAV_ENSURE_MSG(f < nodes_.size(), "fanin id " << f << " does not exist");
  }
  Node n;
  n.type = type;
  n.fanins = std::move(fanins);
  n.name = std::move(name);
  ++gate_count_;
  return add_node(std::move(n));
}

NodeId Netlist::add_dff(std::string name) {
  FAV_ENSURE_MSG(!name.empty(), "DFFs must be named");
  Node n;
  n.type = CellType::kDff;
  n.name = std::move(name);
  const NodeId id = add_node(std::move(n));
  dffs_.push_back(id);
  return id;
}

void Netlist::connect_dff(NodeId dff, NodeId d_input) {
  FAV_ENSURE_MSG(dff < nodes_.size() && nodes_[dff].type == CellType::kDff,
                "connect_dff target is not a DFF");
  FAV_ENSURE_MSG(d_input < nodes_.size(), "D input does not exist");
  FAV_ENSURE_MSG(nodes_[dff].fanins.empty(),
                "DFF '" << nodes_[dff].name << "' already connected");
  nodes_[dff].fanins.push_back(d_input);
  invalidate_caches();
}

void Netlist::set_output(std::string name, NodeId node) {
  FAV_ENSURE_MSG(node < nodes_.size(), "output net does not exist");
  FAV_ENSURE_MSG(!name.empty(), "outputs must be named");
  outputs_.emplace_back(std::move(name), node);
}

const Node& Netlist::node(NodeId id) const {
  FAV_ENSURE_MSG(id < nodes_.size(), "node id " << id << " out of range");
  return nodes_[id];
}

std::optional<NodeId> Netlist::find(const std::string& name) const {
  if (const auto it = by_name_.find(name); it != by_name_.end()) {
    return it->second;
  }
  for (const auto& [oname, id] : outputs_) {
    if (oname == name) return id;
  }
  return std::nullopt;
}

NodeId Netlist::find_or_throw(const std::string& name) const {
  const auto id = find(name);
  FAV_ENSURE_MSG(id.has_value(), "no node named '" << name << "'");
  return *id;
}

const std::vector<std::vector<Netlist::FanoutEdge>>& Netlist::fanouts() const {
  build_derived();
  return fanouts_;
}

const std::vector<NodeId>& Netlist::topo_order() const {
  build_derived();
  return topo_;
}

const std::vector<int>& Netlist::levels() const {
  build_derived();
  return levels_;
}

int Netlist::max_level() const {
  build_derived();
  int m = 0;
  for (int l : levels_) m = std::max(m, l);
  return m;
}

void Netlist::validate() const {
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    FAV_ENSURE_MSG(static_cast<int>(n.fanins.size()) == cell_arity(n.type),
                  "node " << id << " (" << cell_name(n.type) << " '" << n.name
                          << "') has " << n.fanins.size() << " fanins, needs "
                          << cell_arity(n.type));
    for (NodeId f : n.fanins) {
      FAV_ENSURE_MSG(f < nodes_.size(),
                    "node " << id << " references missing fanin " << f);
    }
  }
  build_derived();  // throws on combinational cycles
}

NodeId Netlist::add_node(Node n) {
  const auto id = static_cast<NodeId>(nodes_.size());
  FAV_ENSURE_MSG(nodes_.size() < kInvalidNode, "netlist too large");
  if (!n.name.empty()) {
    const auto [it, inserted] = by_name_.emplace(n.name, id);
    FAV_ENSURE_MSG(inserted, "duplicate node name '" << n.name << "'");
    (void)it;
  }
  nodes_.push_back(std::move(n));
  invalidate_caches();
  return id;
}

void Netlist::invalidate_caches() { derived_valid_ = false; }

void Netlist::build_derived() const {
  if (derived_valid_) return;

  fanouts_.assign(nodes_.size(), {});
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    for (int pin = 0; pin < static_cast<int>(n.fanins.size()); ++pin) {
      fanouts_[n.fanins[pin]].push_back({id, pin});
    }
  }

  // Kahn's algorithm over combinational gates. Sources (PIs, DFF outputs,
  // constants) have no combinational dependencies.
  std::vector<int> pending(nodes_.size(), 0);
  std::deque<NodeId> ready;
  for (NodeId id = 0; id < nodes_.size(); ++id) {
    const Node& n = nodes_[id];
    if (!is_combinational_gate(n.type)) continue;
    int deps = 0;
    for (NodeId f : n.fanins) {
      if (is_combinational_gate(nodes_[f].type)) ++deps;
    }
    pending[id] = deps;
    if (deps == 0) ready.push_back(id);
  }

  topo_.clear();
  topo_.reserve(gate_count_);
  levels_.assign(nodes_.size(), 0);
  while (!ready.empty()) {
    const NodeId id = ready.front();
    ready.pop_front();
    topo_.push_back(id);
    int lvl = 0;
    for (NodeId f : nodes_[id].fanins) lvl = std::max(lvl, levels_[f]);
    levels_[id] = lvl + 1;
    for (const FanoutEdge& e : fanouts_[id]) {
      if (!is_combinational_gate(nodes_[e.consumer].type)) continue;
      if (--pending[e.consumer] == 0) ready.push_back(e.consumer);
    }
  }
  FAV_ENSURE_MSG(topo_.size() == gate_count_,
                "combinational cycle detected: only " << topo_.size() << " of "
                                                      << gate_count_
                                                      << " gates ordered");
  derived_valid_ = true;
}

}  // namespace fav::netlist
