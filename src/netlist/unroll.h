// Explicit sequential unrolling: materializes k time-frames of a netlist as
// one purely combinational netlist.
//
// Frame f's copy of each gate computes cycle f's value; DFF outputs of frame
// 0 become primary inputs (the initial state), and DFF outputs of frame f>0
// are driven by the D-input copy of frame f-1. The paper's
// pre-characterization traverses the unrolled netlist; most of the framework
// uses the implicit traversal in cones.h, but the explicit form is exposed
// for BMC-style analyses and for cross-checking the implicit cone extraction.
#pragma once

#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fav::netlist {

class Unroller {
 public:
  /// Unrolls `nl` for `frames` >= 1 time frames.
  Unroller(const Netlist& nl, int frames);

  const Netlist& unrolled() const { return out_; }
  int frames() const { return frames_; }

  /// Node in the unrolled netlist computing `orig`'s value at cycle `frame`.
  /// For DFFs this is the register's *output* value in that frame.
  NodeId at(NodeId orig, int frame) const;

  /// Primary input of the unrolled netlist holding DFF `orig`'s initial
  /// (frame 0) state.
  NodeId initial_state_input(NodeId orig_dff) const;

 private:
  Netlist out_;
  int frames_;
  std::size_t orig_nodes_;
  std::vector<NodeId> map_;  // [frame * orig_nodes_ + orig] -> unrolled id
};

}  // namespace fav::netlist
