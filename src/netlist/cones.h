// Fanin/fanout cone extraction on the (implicitly) unrolled netlist.
//
// Section 4, Observation 1: only circuits in the fanin and fanout cones of
// the responding signals can affect them, so sampling is restricted to those
// cones. The traversal walks the unrolled netlist breadth-first starting at
// the responding signal: crossing a DFF boundary backwards increments the
// frame index (fault injected one cycle earlier), crossing forwards
// decrements it. Frame i >= 0 is the fanin side, i < 0 the fanout side,
// exactly matching the sign convention of Corr_i in the paper.
#pragma once

#include <unordered_set>
#include <vector>

#include "netlist/netlist.h"

namespace fav::netlist {

/// All cone members of one unroll frame.
struct ConeFrame {
  int frame = 0;                  // cycles before (+) / after (-) observation
  std::vector<NodeId> gates;      // combinational gates in this frame
  std::vector<NodeId> registers;  // DFFs whose *stored value* in this frame
                                  // can influence the responding signal
};

class UnrolledCone {
 public:
  /// Extracts the cone of `responding_signal` up to `fanin_depth` frames
  /// backwards and `fanout_depth` frames forwards.
  UnrolledCone(const Netlist& nl, NodeId responding_signal, int fanin_depth,
               int fanout_depth);

  /// Rebuilds a cone from previously extracted frames (the artifact-cache
  /// load path). Frames must follow the extraction convention: fanin frames
  /// 0..N ascending, fanout frames -1..-M descending, members sorted.
  UnrolledCone(NodeId responding_signal, std::vector<ConeFrame> fanin_frames,
               std::vector<ConeFrame> fanout_frames);

  NodeId responding_signal() const { return rs_; }

  /// Frames 0, 1, ..., fanin_depth (ascending frame index).
  const std::vector<ConeFrame>& fanin_frames() const { return fanin_; }
  /// Frames -1, -2, ..., -fanout_depth.
  const std::vector<ConeFrame>& fanout_frames() const { return fanout_; }

  /// Frame lookup valid for -fanout_depth <= frame <= fanin_depth.
  const ConeFrame& frame(int frame_index) const;
  bool has_frame(int frame_index) const;

  /// True if `node`'s fault in `frame_index` can influence the responding
  /// signal (i.e. the node is a cone member of that frame).
  bool contains(int frame_index, NodeId node) const;

  /// Union of registers over all fanin frames (deduplicated, ascending id).
  std::vector<NodeId> all_fanin_registers() const;
  /// Union of gates over all fanin frames (deduplicated, ascending id).
  std::vector<NodeId> all_fanin_gates() const;

 private:
  void extract_fanin(const Netlist& nl, int depth);
  void extract_fanout(const Netlist& nl, int depth);

  NodeId rs_;
  std::vector<ConeFrame> fanin_;
  std::vector<ConeFrame> fanout_;
  // membership[frame offset] = set of node ids; offset = frame + fanout depth
  std::vector<std::unordered_set<NodeId>> members_;
  int fanout_depth_ = 0;
};

}  // namespace fav::netlist
