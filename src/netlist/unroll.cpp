#include "netlist/unroll.h"

namespace fav::netlist {

Unroller::Unroller(const Netlist& nl, int frames)
    : frames_(frames), orig_nodes_(nl.node_count()) {
  FAV_ENSURE_MSG(frames >= 1, "need at least one frame");
  map_.assign(static_cast<std::size_t>(frames) * orig_nodes_, kInvalidNode);
  auto slot = [&](NodeId orig, int frame) -> NodeId& {
    return map_[static_cast<std::size_t>(frame) * orig_nodes_ + orig];
  };

  for (int f = 0; f < frames; ++f) {
    const std::string suffix = "@f" + std::to_string(f);
    // Sources first.
    for (NodeId id = 0; id < nl.node_count(); ++id) {
      const Node& n = nl.node(id);
      switch (n.type) {
        case CellType::kInput:
          slot(id, f) = out_.add_input(n.name + suffix);
          break;
        case CellType::kConst0:
        case CellType::kConst1:
          slot(id, f) = out_.add_const(n.type == CellType::kConst1);
          break;
        case CellType::kDff:
          if (f == 0) {
            slot(id, f) = out_.add_input(n.name + "@init");
          } else {
            // Register output in frame f = D input value in frame f-1.
            FAV_ENSURE(!n.fanins.empty());
            slot(id, f) = out_.add_gate(
                CellType::kBuf, {slot(n.fanins[0], f - 1)}, n.name + suffix);
          }
          break;
        default:
          break;  // gates handled below in topological order
      }
    }
    for (NodeId id : nl.topo_order()) {
      const Node& n = nl.node(id);
      std::vector<NodeId> fanins;
      fanins.reserve(n.fanins.size());
      for (NodeId fin : n.fanins) {
        FAV_ENSURE_MSG(slot(fin, f) != kInvalidNode,
                      "fanin not yet elaborated in frame " << f);
        fanins.push_back(slot(fin, f));
      }
      slot(id, f) =
          out_.add_gate(n.type, std::move(fanins),
                        n.name.empty() ? std::string{} : n.name + suffix);
    }
  }

  // Expose each original output in every frame.
  for (const auto& [name, id] : nl.outputs()) {
    for (int f = 0; f < frames; ++f) {
      out_.set_output(name + "@f" + std::to_string(f), slot(id, f));
    }
  }
}

NodeId Unroller::at(NodeId orig, int frame) const {
  FAV_ENSURE_MSG(frame >= 0 && frame < frames_, "frame out of range");
  FAV_ENSURE_MSG(orig < orig_nodes_, "node out of range");
  const NodeId id = map_[static_cast<std::size_t>(frame) * orig_nodes_ + orig];
  FAV_ENSURE(id != kInvalidNode);
  return id;
}

NodeId Unroller::initial_state_input(NodeId orig_dff) const {
  return at(orig_dff, 0);
}

}  // namespace fav::netlist
