// Word-level structural generator over the gate-level netlist IR.
//
// This layer plays the role synthesis plays for the paper's commercial
// processor: it elaborates multi-bit datapath operators (adders, muxes,
// comparators, shifters, decoders) into the small standard-cell vocabulary
// of netlist::CellType. Words are little-endian vectors of nets (index 0 is
// the LSB).
#pragma once

#include <cstdint>
#include <span>
#include <string>
#include <vector>

#include "netlist/netlist.h"

namespace fav::gen {

using netlist::CellType;
using netlist::Netlist;
using netlist::NodeId;

/// Little-endian bundle of nets.
using Word = std::vector<NodeId>;

class Builder {
 public:
  explicit Builder(Netlist& nl) : nl_(&nl) {}

  Netlist& netlist() { return *nl_; }

  /// --- single-bit primitives -------------------------------------------
  NodeId const0();
  NodeId const1();
  NodeId bnot(NodeId a);
  NodeId bbuf(NodeId a);
  NodeId band(NodeId a, NodeId b);
  NodeId bor(NodeId a, NodeId b);
  NodeId bnand(NodeId a, NodeId b);
  NodeId bnor(NodeId a, NodeId b);
  NodeId bxor(NodeId a, NodeId b);
  NodeId bxnor(NodeId a, NodeId b);
  /// sel ? b : a
  NodeId bmux(NodeId sel, NodeId a, NodeId b);
  /// Balanced AND / OR trees (empty input yields the identity constant).
  NodeId and_all(std::span<const NodeId> bits);
  NodeId or_all(std::span<const NodeId> bits);

  /// --- word construction -------------------------------------------------
  Word input_word(const std::string& name, int width);
  /// Creates `width` DFFs named "<name>[i]"; connect with connect_word.
  Word dff_word(const std::string& name, int width);
  void connect_word(const Word& dffs, const Word& d);
  Word constant_word(std::uint64_t value, int width);
  Word zext(const Word& a, int width);
  Word slice(const Word& a, int lo, int width) const;
  Word concat(const Word& lo, const Word& hi) const;

  /// --- word-level logic ----------------------------------------------------
  Word not_word(const Word& a);
  Word and_word(const Word& a, const Word& b);
  Word or_word(const Word& a, const Word& b);
  Word xor_word(const Word& a, const Word& b);
  /// sel ? b : a, bitwise.
  Word mux_word(NodeId sel, const Word& a, const Word& b);
  /// Select choices[index(sel)] where sel is a little-endian select word.
  /// choices.size() must equal 1 << sel.size().
  Word mux_tree(const Word& sel, std::span<const Word> choices);

  /// --- arithmetic ------------------------------------------------------
  /// Ripple-carry add with carry-in; returns {sum, carry_out}.
  std::pair<Word, NodeId> adder(const Word& a, const Word& b, NodeId carry_in);
  Word add_word(const Word& a, const Word& b);
  /// a - b (two's complement; width of a).
  Word sub_word(const Word& a, const Word& b);
  Word increment(const Word& a);

  /// --- comparison --------------------------------------------------------
  NodeId eq_word(const Word& a, const Word& b);
  NodeId ne_word(const Word& a, const Word& b);
  /// Unsigned comparisons.
  NodeId ult(const Word& a, const Word& b);
  NodeId ule(const Word& a, const Word& b);
  NodeId uge(const Word& a, const Word& b);
  NodeId ugt(const Word& a, const Word& b);
  NodeId reduce_or(const Word& a);
  NodeId reduce_and(const Word& a);
  NodeId is_zero(const Word& a);

  /// --- shift ---------------------------------------------------------------
  /// Logical barrel shifts by a (small) shift-amount word.
  Word shl_word(const Word& a, const Word& shamt);
  Word shr_word(const Word& a, const Word& shamt);

  /// --- structured blocks -----------------------------------------------
  /// One-hot decoder: output[i] = (sel == i), for i in [0, 2^sel.size()).
  Word decoder(const Word& sel);

 private:
  Netlist* nl_;
  NodeId const0_ = netlist::kInvalidNode;
  NodeId const1_ = netlist::kInvalidNode;
};

/// Reads a word's value from any per-node evaluation function.
template <typename ValueFn>
std::uint64_t read_word(const Word& w, ValueFn&& value) {
  std::uint64_t out = 0;
  for (std::size_t i = 0; i < w.size(); ++i) {
    if (value(w[i])) out |= std::uint64_t{1} << i;
  }
  return out;
}

}  // namespace fav::gen
