#include "gen/builder.h"

#include <algorithm>

namespace fav::gen {

NodeId Builder::const0() {
  if (const0_ == netlist::kInvalidNode) const0_ = nl_->add_const(false);
  return const0_;
}

NodeId Builder::const1() {
  if (const1_ == netlist::kInvalidNode) const1_ = nl_->add_const(true);
  return const1_;
}

NodeId Builder::bnot(NodeId a) { return nl_->add_gate(CellType::kNot, {a}); }
NodeId Builder::bbuf(NodeId a) { return nl_->add_gate(CellType::kBuf, {a}); }
NodeId Builder::band(NodeId a, NodeId b) {
  return nl_->add_gate(CellType::kAnd, {a, b});
}
NodeId Builder::bor(NodeId a, NodeId b) {
  return nl_->add_gate(CellType::kOr, {a, b});
}
NodeId Builder::bnand(NodeId a, NodeId b) {
  return nl_->add_gate(CellType::kNand, {a, b});
}
NodeId Builder::bnor(NodeId a, NodeId b) {
  return nl_->add_gate(CellType::kNor, {a, b});
}
NodeId Builder::bxor(NodeId a, NodeId b) {
  return nl_->add_gate(CellType::kXor, {a, b});
}
NodeId Builder::bxnor(NodeId a, NodeId b) {
  return nl_->add_gate(CellType::kXnor, {a, b});
}
NodeId Builder::bmux(NodeId sel, NodeId a, NodeId b) {
  return nl_->add_gate(CellType::kMux, {sel, a, b});
}

NodeId Builder::and_all(std::span<const NodeId> bits) {
  if (bits.empty()) return const1();
  std::vector<NodeId> level(bits.begin(), bits.end());
  while (level.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(band(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

NodeId Builder::or_all(std::span<const NodeId> bits) {
  if (bits.empty()) return const0();
  std::vector<NodeId> level(bits.begin(), bits.end());
  while (level.size() > 1) {
    std::vector<NodeId> next;
    next.reserve((level.size() + 1) / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(bor(level[i], level[i + 1]));
    }
    if (level.size() % 2 == 1) next.push_back(level.back());
    level = std::move(next);
  }
  return level[0];
}

Word Builder::input_word(const std::string& name, int width) {
  FAV_ENSURE(width > 0);
  Word w;
  w.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    w.push_back(nl_->add_input(name + "[" + std::to_string(i) + "]"));
  }
  return w;
}

Word Builder::dff_word(const std::string& name, int width) {
  FAV_ENSURE(width > 0);
  Word w;
  w.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    w.push_back(nl_->add_dff(name + "[" + std::to_string(i) + "]"));
  }
  return w;
}

void Builder::connect_word(const Word& dffs, const Word& d) {
  FAV_ENSURE_MSG(dffs.size() == d.size(), "width mismatch in connect_word");
  for (std::size_t i = 0; i < dffs.size(); ++i) nl_->connect_dff(dffs[i], d[i]);
}

Word Builder::constant_word(std::uint64_t value, int width) {
  FAV_ENSURE(width > 0 && width <= 64);
  Word w;
  w.reserve(static_cast<std::size_t>(width));
  for (int i = 0; i < width; ++i) {
    w.push_back((value >> i) & 1 ? const1() : const0());
  }
  return w;
}

Word Builder::zext(const Word& a, int width) {
  FAV_ENSURE(static_cast<std::size_t>(width) >= a.size());
  Word w = a;
  while (w.size() < static_cast<std::size_t>(width)) w.push_back(const0());
  return w;
}

Word Builder::slice(const Word& a, int lo, int width) const {
  FAV_ENSURE(lo >= 0 && width > 0);
  FAV_ENSURE_MSG(static_cast<std::size_t>(lo + width) <= a.size(),
                "slice out of range");
  return Word(a.begin() + lo, a.begin() + lo + width);
}

Word Builder::concat(const Word& lo, const Word& hi) const {
  Word w = lo;
  w.insert(w.end(), hi.begin(), hi.end());
  return w;
}

Word Builder::not_word(const Word& a) {
  Word w;
  w.reserve(a.size());
  for (NodeId b : a) w.push_back(bnot(b));
  return w;
}

Word Builder::and_word(const Word& a, const Word& b) {
  FAV_ENSURE(a.size() == b.size());
  Word w;
  w.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w.push_back(band(a[i], b[i]));
  return w;
}

Word Builder::or_word(const Word& a, const Word& b) {
  FAV_ENSURE(a.size() == b.size());
  Word w;
  w.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w.push_back(bor(a[i], b[i]));
  return w;
}

Word Builder::xor_word(const Word& a, const Word& b) {
  FAV_ENSURE(a.size() == b.size());
  Word w;
  w.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w.push_back(bxor(a[i], b[i]));
  return w;
}

Word Builder::mux_word(NodeId sel, const Word& a, const Word& b) {
  FAV_ENSURE(a.size() == b.size());
  Word w;
  w.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) w.push_back(bmux(sel, a[i], b[i]));
  return w;
}

Word Builder::mux_tree(const Word& sel, std::span<const Word> choices) {
  FAV_ENSURE_MSG(choices.size() == (std::size_t{1} << sel.size()),
                "mux_tree needs 2^|sel| choices");
  std::vector<Word> level(choices.begin(), choices.end());
  for (NodeId s : sel) {
    std::vector<Word> next;
    next.reserve(level.size() / 2);
    for (std::size_t i = 0; i + 1 < level.size(); i += 2) {
      next.push_back(mux_word(s, level[i], level[i + 1]));
    }
    level = std::move(next);
  }
  FAV_ENSURE(level.size() == 1);
  return level[0];
}

std::pair<Word, NodeId> Builder::adder(const Word& a, const Word& b,
                                       NodeId carry_in) {
  FAV_ENSURE(a.size() == b.size());
  Word sum;
  sum.reserve(a.size());
  NodeId carry = carry_in;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const NodeId axb = bxor(a[i], b[i]);
    sum.push_back(bxor(axb, carry));
    // carry_out = (a & b) | (carry & (a ^ b))
    carry = bor(band(a[i], b[i]), band(carry, axb));
  }
  return {std::move(sum), carry};
}

Word Builder::add_word(const Word& a, const Word& b) {
  return adder(a, b, const0()).first;
}

Word Builder::sub_word(const Word& a, const Word& b) {
  return adder(a, not_word(b), const1()).first;
}

Word Builder::increment(const Word& a) {
  return adder(a, constant_word(0, static_cast<int>(a.size())), const1()).first;
}

NodeId Builder::eq_word(const Word& a, const Word& b) {
  FAV_ENSURE(a.size() == b.size());
  std::vector<NodeId> bits;
  bits.reserve(a.size());
  for (std::size_t i = 0; i < a.size(); ++i) bits.push_back(bxnor(a[i], b[i]));
  return and_all(bits);
}

NodeId Builder::ne_word(const Word& a, const Word& b) {
  return bnot(eq_word(a, b));
}

NodeId Builder::ult(const Word& a, const Word& b) {
  // a < b  <=>  carry-out of a + ~b + 1 is 0 (no borrow means a >= b).
  const auto [sum, carry] = adder(a, not_word(b), const1());
  (void)sum;
  return bnot(carry);
}

NodeId Builder::ule(const Word& a, const Word& b) { return bnot(ult(b, a)); }
NodeId Builder::uge(const Word& a, const Word& b) { return bnot(ult(a, b)); }
NodeId Builder::ugt(const Word& a, const Word& b) { return ult(b, a); }

NodeId Builder::reduce_or(const Word& a) { return or_all(a); }
NodeId Builder::reduce_and(const Word& a) { return and_all(a); }
NodeId Builder::is_zero(const Word& a) { return bnot(or_all(a)); }

Word Builder::shl_word(const Word& a, const Word& shamt) {
  Word cur = a;
  for (std::size_t s = 0; s < shamt.size(); ++s) {
    const std::size_t dist = std::size_t{1} << s;
    Word shifted(cur.size(), const0());
    for (std::size_t i = dist; i < cur.size(); ++i) shifted[i] = cur[i - dist];
    cur = mux_word(shamt[s], cur, shifted);
  }
  return cur;
}

Word Builder::shr_word(const Word& a, const Word& shamt) {
  Word cur = a;
  for (std::size_t s = 0; s < shamt.size(); ++s) {
    const std::size_t dist = std::size_t{1} << s;
    Word shifted(cur.size(), const0());
    for (std::size_t i = 0; i + dist < cur.size(); ++i) shifted[i] = cur[i + dist];
    cur = mux_word(shamt[s], cur, shifted);
  }
  return cur;
}

Word Builder::decoder(const Word& sel) {
  const std::size_t n = std::size_t{1} << sel.size();
  Word out;
  out.reserve(n);
  for (std::size_t v = 0; v < n; ++v) {
    std::vector<NodeId> bits;
    bits.reserve(sel.size());
    for (std::size_t i = 0; i < sel.size(); ++i) {
      bits.push_back((v >> i) & 1 ? bbuf(sel[i]) : bnot(sel[i]));
    }
    out.push_back(and_all(bits));
  }
  return out;
}

}  // namespace fav::gen
