#include "soc/benchmark.h"

#include "rtl/assembler.h"

namespace fav::soc {

namespace {

// Region 0: [0x0000, 0x3FFF] read+write; region 1: [0x4000, 0x4FFF]
// read-only. Then enable the MPU.
constexpr const char* kMpuSetup = R"(
    li r1, 0xFF00
    li r2, 0x0000
    sw r2, r1, 0
    li r2, 0x3FFF
    sw r2, r1, 1
    li r2, 7
    sw r2, r1, 2
    li r1, 0xFF08
    li r2, 0x4000
    sw r2, r1, 0
    li r2, 0x4FFF
    sw r2, r1, 1
    li r2, 5
    sw r2, r1, 2
    li r1, 0xFF22
    li r2, 1
    sw r2, r1, 0
)";

// Legitimate busy-work: stores, loads, ALU traffic against open RAM. This is
// the attack window preceding the illegal access (the range of Te).
constexpr const char* kBusyWork = R"(
    li r6, 0x0100
    li r3, 12
    li r5, 1
busy:
    sw r3, r6, 0
    lw r4, r6, 0
    add r4, r4, r3
    sw r4, r6, 1
    sub r3, r3, r5
    bne r3, r0, busy
)";

constexpr const char* kAftermath = R"(
    li r3, 4
after:
    lw r4, r6, 1
    addi r4, r4, 1
    sw r4, r6, 1
    sub r3, r3, r5
    bne r3, r0, after
    halt
)";

}  // namespace

bool SecurityBenchmark::attack_succeeded(const rtl::ArchState& state,
                                         const rtl::Memory& ram) const {
  if (state.viol_sticky) return false;  // attack was detected
  switch (kind) {
    case Kind::kIllegalWrite:
    case Kind::kIllegalExecute:  // the privileged routine plants the token
      return ram.read(protected_addr) == attack_value;
    case Kind::kIllegalRead:
      return ram.read(exfil_addr) == secret_value;
  }
  return false;
}

SecurityBenchmark make_illegal_write_benchmark() {
  SecurityBenchmark b;
  b.name = "illegal_memory_write";
  b.kind = SecurityBenchmark::Kind::kIllegalWrite;
  b.protected_addr = 0x4100;
  b.protected_init = 0x1111;
  b.attack_value = 0xBEEF;
  b.max_cycles = 400;
  b.program = rtl::assemble(
      std::string(".data 0x4100 0x1111\n") + kMpuSetup + kBusyWork + R"(
    ; --- illegal write into the read-only region (target cycle Tt) ---
    li r1, 0x4100
    li r2, 0xBEEF
    sw r2, r1, 0
)" + kAftermath);
  return b;
}

SecurityBenchmark make_illegal_read_benchmark() {
  SecurityBenchmark b;
  b.name = "illegal_memory_read";
  b.kind = SecurityBenchmark::Kind::kIllegalRead;
  b.protected_addr = 0x5180;
  b.secret_value = 0x5EC1;
  b.exfil_addr = 0x0200;
  b.max_cycles = 400;
  // Region 2 holds the secret: enabled but with neither read nor write
  // permission (privileged-only data).
  b.program = rtl::assemble(
      std::string(".data 0x5180 0x5EC1\n") + kMpuSetup + R"(
    li r1, 0xFF10
    li r2, 0x5000
    sw r2, r1, 0
    li r2, 0x5FFF
    sw r2, r1, 1
    li r2, 4
    sw r2, r1, 2
)" + kBusyWork + R"(
    ; --- illegal read of the secret (target cycle Tt) ---
    li r1, 0x5180
    lw r7, r1, 0
    li r4, 0x0200
    sw r7, r4, 0     ; exfiltrate to open RAM
)" + kAftermath);
  return b;
}

SecurityBenchmark make_illegal_exec_benchmark() {
  SecurityBenchmark b;
  b.name = "illegal_execution";
  b.kind = SecurityBenchmark::Kind::kIllegalExecute;
  b.protected_addr = 0x0300;  // where the privileged routine puts its token
  b.protected_init = 0x0000;
  b.attack_value = 0xCAFE;
  b.max_cycles = 400;
  // Layout: main code (exec-granted by region 2) -> jmp hidden (Tt) ->
  // hidden privileged routine (NOT exec-granted) -> epilogue (exec-granted
  // by region 3). Fault-free, the fetch at `hidden` is denied, the routine
  // NOP-slides without planting the token, and execution resumes at the
  // epilogue with the violation recorded.
  b.program = rtl::assemble(R"(
    ; region 0: [0x0000, 0x3FFF] read+write (data accesses)
    li r1, 0xFF00
    li r2, 0x0000
    sw r2, r1, 0
    li r2, 0x3FFF
    sw r2, r1, 1
    li r2, 7
    sw r2, r1, 2
    ; region 2: execute for the main code [0, hidden-1]
    li r1, 0xFF10
    li r2, 0x0000
    sw r2, r1, 0
    li r2, hidden
    addi r2, r2, -1
    sw r2, r1, 1
    li r2, 12         ; exec | enable
    sw r2, r1, 2
    ; region 3: execute for the epilogue
    li r1, 0xFF18
    li r2, epilogue
    sw r2, r1, 0
    li r2, end
    sw r2, r1, 1
    li r2, 12
    sw r2, r1, 2
    ; MPU on with the instruction access check
    li r1, 0xFF22
    li r2, 3
    sw r2, r1, 0
    ; busy work (the attack window)
    li r6, 0x0100
    li r3, 12
    li r5, 1
busy:
    sw r3, r6, 0
    lw r4, r6, 0
    add r4, r4, r3
    sw r4, r6, 1
    sub r3, r3, r5
    bne r3, r0, busy
    ; --- illegal jump into the privileged routine (target cycle Tt) ---
    jmp hidden
hidden:
    li r4, 0x0300
    li r5, 0xCAFE
    sw r5, r4, 0      ; plant the privileged token
epilogue:
    nop
end:
    halt
  )");
  // The successful attack's post-Tt trajectory for the analytical evaluator:
  // fetches of the hidden routine + epilogue, and the token store.
  const std::uint16_t hidden = b.program.label("hidden");
  const std::uint16_t end = b.program.label("end");
  for (std::uint16_t pc = hidden; pc <= end; ++pc) {
    b.attack_path.push_back({pc, false, /*is_fetch=*/true});
  }
  b.attack_path.push_back({b.protected_addr, /*is_write=*/true, false});
  return b;
}

SecurityBenchmark make_dma_exfiltration_benchmark() {
  SecurityBenchmark b;
  b.name = "dma_exfiltration";
  b.kind = SecurityBenchmark::Kind::kIllegalRead;
  b.protected_addr = 0x5180;
  b.secret_value = 0x5EC1;
  b.exfil_addr = 0x0200;
  b.max_cycles = 400;
  constexpr int kWords = 4;
  // The peripheral path of paper Fig. 1: the program points the DMA engine
  // at the privileged block and starts it at Tt. Fault-free, the engine's
  // very first read is denied by the MPU and the transfer aborts.
  b.program = rtl::assemble(
      std::string(".data 0x5180 0x5EC1\n.data 0x5181 0x5EC2\n"
                  ".data 0x5182 0x5EC3\n.data 0x5183 0x5EC4\n") +
      kMpuSetup + R"(
    ; region 2: the privileged block, enabled with no permissions
    li r1, 0xFF10
    li r2, 0x5000
    sw r2, r1, 0
    li r2, 0x5FFF
    sw r2, r1, 1
    li r2, 4
    sw r2, r1, 2
    ; program the DMA engine (device writes are never checked)
    li r1, 0xFF30
    li r2, 0x5180
    sw r2, r1, 0      ; source: the secret block
    li r2, 0x0200
    sw r2, r1, 1      ; destination: open RAM
    li r2, 4
    sw r2, r1, 2      ; length
)" + kBusyWork + R"(
    ; --- start the illegal transfer (denied at target cycle Tt) ---
    li r1, 0xFF33
    li r2, 1
    sw r2, r1, 0
)" + kAftermath);
  for (std::uint16_t i = 0; i < kWords; ++i) {
    b.attack_path.push_back(
        {static_cast<std::uint16_t>(b.protected_addr + i), false, false});
    b.attack_path.push_back(
        {static_cast<std::uint16_t>(b.exfil_addr + i), true, false});
  }
  return b;
}

rtl::Program make_synthetic_workload() {
  // The pre-characterization workload must exercise the responding signal:
  // each loop iteration issues one denied probe access (to an uncovered
  // address) so the MPU violation wire toggles and switching signatures can
  // correlate internal nodes with it. The probe does not disturb the rest of
  // the workload (the squashed load reads 0 into a scratch register).
  return rtl::assemble(std::string(kMpuSetup) + R"(
    li r6, 0x0100
    li r7, 0xEFFF     ; uncovered probe address (always denied; unreachable
                      ; even by single-bit extensions of region limits)
    li r3, 16
    li r5, 1
loop:
    sw r3, r6, 0
    lw r4, r6, 0
    xor r4, r4, r3
    shl r2, r4, r5
    sw r2, r6, 1
    lw r1, r6, 1
    lw r2, r7, 0      ; denied probe: fires the responding signal
    or r1, r1, r4
    sw r1, r6, 2
    sub r3, r3, r5
    bne r3, r0, loop
    ; read MPU status legitimately
    li r1, 0xFF20
    lw r2, r1, 0
    halt
  )");
}

}  // namespace fav::soc
