// Gate-level elaboration of MCU16.
//
// SocNetlist builds a structural netlist implementing exactly the semantics
// of rtl::Machine (same ISA, same MPU, same memory map). Every architectural
// register bit in rtl::RegisterMap corresponds 1:1 — by construction order —
// to a DFF in the netlist, which is what allows the framework to hand state
// between the RTL level and the gate level losslessly (paper Fig. 5 steps
// 3/4/5). Instruction ROM and data RAM are external (standard SRAM macros in
// a real flow); the netlist exposes fetch and memory ports.
#pragma once

#include <vector>

#include "gen/builder.h"
#include "netlist/netlist.h"
#include "rtl/registers.h"

namespace fav::soc {

/// Netlist-level interface nets of the elaborated core.
struct SocPorts {
  // Primary inputs.
  gen::Word instr;      // fetched instruction word (from external ROM)
  gen::Word mem_rdata;  // combinational RAM read data

  // Observable nets (registered or combinational).
  gen::Word pc;         // current PC (drives the ROM address)
  gen::Word mem_addr;   // data address
  gen::Word mem_wdata;  // data to store
  netlist::NodeId mem_read = netlist::kInvalidNode;   // RAM read performed
  netlist::NodeId mem_write = netlist::kInvalidNode;  // RAM write performed
  /// The responding signal (paper Section 4, Observation 1): a checked data
  /// access was denied by the MPU this cycle.
  netlist::NodeId mpu_viol = netlist::kInvalidNode;
  netlist::NodeId halted = netlist::kInvalidNode;
  /// DMA engine (peripheral bus master): transfer strobe and committed-write
  /// strobe; addresses are read from the dma_src/dma_dst register words.
  netlist::NodeId dma_transfer = netlist::kInvalidNode;
  netlist::NodeId dma_write = netlist::kInvalidNode;
  gen::Word dma_src;
  gen::Word dma_dst;
};

class SocNetlist {
 public:
  SocNetlist();

  const netlist::Netlist& netlist() const { return nl_; }
  const SocPorts& ports() const { return ports_; }

  /// The DFF implementing flat register-map bit `flat_bit`.
  netlist::NodeId dff_for_bit(int flat_bit) const;
  /// Inverse mapping; -1 when `node` is not a DFF of this design.
  int flat_bit_for_dff(netlist::NodeId node) const;

  static const rtl::RegisterMap& reg_map() { return rtl::RegisterMap::mcu16(); }

 private:
  void elaborate();

  netlist::Netlist nl_;
  SocPorts ports_;
  std::vector<netlist::NodeId> bit_to_dff_;
  std::vector<int> dff_to_bit_;  // indexed by NodeId
};

}  // namespace fav::soc
