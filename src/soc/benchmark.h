// Security benchmarks: the workload programs whose vulnerability the
// framework evaluates (paper Section 6: "benchmark ... written in C++ which
// includes illegal memory write and read operations" — here written in MCU16
// assembly).
//
// Each benchmark configures the MPU, performs legitimate busy-work (the
// attack window), executes one illegal access at the target cycle Tt, and
// runs a short aftermath before halting. The success oracle encodes the
// attacker's goal: the malicious operation completed AND no violation was
// recorded (the "illegal transition" of Section 3.3).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "rtl/machine.h"

namespace fav::soc {

struct SecurityBenchmark {
  enum class Kind { kIllegalWrite, kIllegalRead, kIllegalExecute };

  /// One access of the *successful* attack's trajectory after the target
  /// cycle (needed by the analytical evaluator for benchmarks whose control
  /// flow changes when the attack succeeds, i.e. kIllegalExecute: the hidden
  /// routine's fetches and stores are not part of the golden trace).
  struct AttackPathAccess {
    std::uint16_t addr = 0;
    bool is_write = false;
    bool is_fetch = false;
  };

  std::string name;
  Kind kind = Kind::kIllegalWrite;
  rtl::Program program;
  std::uint64_t max_cycles = 0;

  std::uint16_t protected_addr = 0;  // word inside the read-only region
  std::uint16_t protected_init = 0;  // its initial (legitimate) contents
  std::uint16_t attack_value = 0;    // value the illegal write tries to plant
  std::uint16_t exfil_addr = 0;      // where the illegal read leaks to
  std::uint16_t secret_value = 0;    // contents the illegal read targets

  /// Post-Tt accesses of the successful attack (kIllegalExecute only).
  std::vector<AttackPathAccess> attack_path;

  /// Attacker-goal oracle on the final machine state.
  bool attack_succeeded(const rtl::ArchState& state,
                        const rtl::Memory& ram) const;
};

/// Benchmark 1: illegal memory write into the read-only region.
SecurityBenchmark make_illegal_write_benchmark();

/// Benchmark 2: illegal memory read of a secret, exfiltrated to open RAM.
SecurityBenchmark make_illegal_read_benchmark();

/// Benchmark 3: illegal execution — jumping into a privileged routine that
/// the MPU's instruction access check (paper Fig. 1) marks non-executable.
/// The routine plants a privileged token in open RAM; the attacker wins if
/// the token appears with no recorded violation.
SecurityBenchmark make_illegal_exec_benchmark();

/// Benchmark 4: DMA exfiltration — the peripheral bus master (paper Fig. 1)
/// is pointed at a privileged block; the MPU denies the engine's first read
/// at Tt. A fault that opens the block lets the transfer copy the secret to
/// open RAM undetected.
SecurityBenchmark make_dma_exfiltration_benchmark();

/// Synthetic workload for pre-characterization (paper Section 4: switching
/// signatures and register characterization run on synthetic benchmarks).
/// Exercises the same MPU configuration and a representative mix of ALU,
/// memory and branch activity, without any illegal access.
rtl::Program make_synthetic_workload();

}  // namespace fav::soc
