#include "soc/gate_machine.h"

namespace fav::soc {

using rtl::RegisterMap;

GateLevelMachine::GateLevelMachine(const SocNetlist& soc,
                                   const rtl::Program& program)
    : soc_(&soc), program_(&program), sim_(soc.netlist()) {
  reset();
}

void GateLevelMachine::reset() {
  ram_ = rtl::Memory{};
  for (const auto& [addr, value] : program_->ram_init) ram_.write(addr, value);
  load_state(rtl::ArchState{});
  cycle_ = 0;
}

std::uint16_t GateLevelMachine::read_output_word(const gen::Word& w) const {
  return static_cast<std::uint16_t>(
      gen::read_word(w, [&](netlist::NodeId id) { return sim_.value(id); }));
}

void GateLevelMachine::settle_inputs() {
  ++total_settles_;
  const SocPorts& p = soc_->ports();
  // Pass 1: fetch. The PC is a register, readable before evaluation.
  const std::uint16_t pc = static_cast<std::uint16_t>(
      gen::read_word(p.pc, [&](netlist::NodeId id) { return sim_.value(id); }));
  const std::uint16_t instr = program_->fetch(pc);
  for (std::size_t i = 0; i < 16; ++i) {
    sim_.set_input(p.instr[i], (instr >> i) & 1);
  }
  sim_.evaluate_comb();
  // Pass 2: combinational RAM read at the computed address.
  const std::uint16_t addr = read_output_word(p.mem_addr);
  const std::uint16_t rdata = ram_.read(addr);
  for (std::size_t i = 0; i < 16; ++i) {
    sim_.set_input(p.mem_rdata[i], (rdata >> i) & 1);
  }
  sim_.evaluate_comb();
}

void GateLevelMachine::broadcast_settled(netlist::WordSimulator& words) const {
  words.broadcast_from(sim_);
}

rtl::StepInfo GateLevelMachine::step() {
  ++total_steps_;
  settle_inputs();
  const SocPorts& p = soc_->ports();

  rtl::StepInfo info;
  info.instr = rtl::Instr{program_->fetch(read_output_word(p.pc))};
  info.mem_addr = read_output_word(p.mem_addr);
  info.mem_wdata = read_output_word(p.mem_wdata);
  info.mem_read = sim_.value(p.mem_read);
  info.mem_write = sim_.value(p.mem_write);
  info.mpu_viol = sim_.value(p.mpu_viol);
  if (info.mem_read) info.mem_rdata = ram_.read(info.mem_addr);

  if (info.mem_write) {
    ram_.write(info.mem_addr, info.mem_wdata);
    info.mem_write_done = true;
  }
  // DMA transfer (after the core's write, matching the behavioural model):
  // the moved word never enters the netlist — the testbench RAM routes it.
  info.dma_read = sim_.value(p.dma_transfer);
  if (info.dma_read) {
    info.dma_addr_src = read_output_word(p.dma_src);
    info.dma_addr_dst = read_output_word(p.dma_dst);
    if (sim_.value(p.dma_write)) {
      ram_.write(info.dma_addr_dst, ram_.read(info.dma_addr_src));
      info.dma_write_done = true;
    } else {
      info.dma_viol = true;
    }
  }
  sim_.clock_edge();
  ++cycle_;
  return info;
}

std::uint64_t GateLevelMachine::run(std::uint64_t cycles) {
  std::uint64_t done = 0;
  while (done < cycles && !halted()) {
    step();
    ++done;
  }
  return done;
}

bool GateLevelMachine::halted() const {
  return sim_.value(soc_->ports().halted);
}

rtl::ArchState GateLevelMachine::extract_state() const {
  const RegisterMap& map = SocNetlist::reg_map();
  rtl::ArchState s;
  for (int bit = 0; bit < map.total_bits(); ++bit) {
    map.set_bit(s, bit, sim_.value(soc_->dff_for_bit(bit)));
  }
  return s;
}

void GateLevelMachine::load_state(const rtl::ArchState& state) {
  const RegisterMap& map = SocNetlist::reg_map();
  for (int bit = 0; bit < map.total_bits(); ++bit) {
    sim_.set_register(soc_->dff_for_bit(bit), map.get_bit(state, bit));
  }
}

}  // namespace fav::soc
