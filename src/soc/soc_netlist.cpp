#include "soc/soc_netlist.h"

#include "rtl/isa.h"

namespace fav::soc {

using gen::Builder;
using gen::Word;
using netlist::CellType;
using netlist::NodeId;
using rtl::kMpuRegionCount;

SocNetlist::SocNetlist() {
  elaborate();
  nl_.validate();

  // Bind DFFs to register-map bits. dff_word() creation order in elaborate()
  // follows RegisterMap field order bit-for-bit, so the netlist's DFF list is
  // the flat bit order; the name check below enforces this invariant.
  const rtl::RegisterMap& map = reg_map();
  const auto& dffs = nl_.dffs();
  FAV_ENSURE_MSG(static_cast<int>(dffs.size()) == map.total_bits(),
                "DFF count " << dffs.size() << " != register map bits "
                             << map.total_bits());
  bit_to_dff_.assign(static_cast<std::size_t>(map.total_bits()),
                     netlist::kInvalidNode);
  dff_to_bit_.assign(nl_.node_count(), -1);
  for (int bit = 0; bit < map.total_bits(); ++bit) {
    const auto [fi, b] = map.locate(bit);
    const std::string expected =
        map.field(fi).name + "[" + std::to_string(b) + "]";
    const NodeId dff = dffs[static_cast<std::size_t>(bit)];
    FAV_ENSURE_MSG(nl_.node(dff).name == expected,
                  "DFF order mismatch: bit " << bit << " is '"
                                             << nl_.node(dff).name
                                             << "', expected '" << expected
                                             << "'");
    bit_to_dff_[static_cast<std::size_t>(bit)] = dff;
    dff_to_bit_[dff] = bit;
  }
}

NodeId SocNetlist::dff_for_bit(int flat_bit) const {
  FAV_ENSURE_MSG(
      flat_bit >= 0 && flat_bit < static_cast<int>(bit_to_dff_.size()),
      "flat bit out of range");
  return bit_to_dff_[static_cast<std::size_t>(flat_bit)];
}

int SocNetlist::flat_bit_for_dff(netlist::NodeId node) const {
  if (node >= dff_to_bit_.size()) return -1;
  return dff_to_bit_[node];
}

void SocNetlist::elaborate() {
  Builder b(nl_);

  // --- sequential state, in RegisterMap order --------------------------
  const Word pc = b.dff_word("pc", 16);
  std::vector<Word> regs;
  for (int r = 0; r < 8; ++r) {
    regs.push_back(b.dff_word("r" + std::to_string(r), 16));
  }
  struct RegionRegs {
    Word base, limit, perm;
  };
  std::vector<RegionRegs> mpu;
  for (int k = 0; k < kMpuRegionCount; ++k) {
    const std::string p = "mpu" + std::to_string(k) + "_";
    RegionRegs rr;
    rr.base = b.dff_word(p + "base", 16);
    rr.limit = b.dff_word(p + "limit", 16);
    rr.perm = b.dff_word(p + "perm", rtl::kPermBits);
    mpu.push_back(rr);
  }
  const Word mpu_enable = b.dff_word("mpu_enable", 1);
  const Word instr_check = b.dff_word("instr_check", 1);
  const Word viol_sticky = b.dff_word("viol_sticky", 1);
  const Word viol_addr = b.dff_word("viol_addr", 16);
  const Word halted = b.dff_word("halted", 1);
  const Word dma_src = b.dff_word("dma_src", 16);
  const Word dma_dst = b.dff_word("dma_dst", 16);
  const Word dma_len = b.dff_word("dma_len", 16);
  const Word dma_active = b.dff_word("dma_active", 1);

  const NodeId halted_bit = halted[0];
  const NodeId running = b.bnot(halted_bit);

  // --- fetch / decode ----------------------------------------------------
  ports_.instr = b.input_word("instr", 16);
  ports_.mem_rdata = b.input_word("mem_rdata", 16);
  const Word& instr = ports_.instr;

  // Instruction access check (paper Fig. 1): when both the MPU and the
  // instruction check are enabled, the fetch at `pc` must be granted execute
  // permission by some region; otherwise the instruction is squashed to a
  // NOP (every opcode strobe below is gated by fetch_ok).
  std::vector<NodeId> exec_grants;
  for (int k = 0; k < kMpuRegionCount; ++k) {
    const auto& rr = mpu[static_cast<std::size_t>(k)];
    const NodeId enabled = rr.perm[2];
    const NodeId in_lo = b.uge(pc, rr.base);
    const NodeId in_hi = b.ule(pc, rr.limit);
    exec_grants.push_back(
        b.band(b.band(enabled, b.band(in_lo, in_hi)), rr.perm[3]));
  }
  const NodeId any_exec = b.or_all(exec_grants);
  const NodeId fetch_denied =
      nl_.add_gate(CellType::kAnd,
                   {b.band(mpu_enable[0], instr_check[0]), b.bnot(any_exec)},
                   "fetch_denied");
  const NodeId fetch_ok = b.bnot(fetch_denied);

  const Word op = b.slice(instr, 12, 4);
  const Word op_oh = b.decoder(op);  // one-hot over 16 opcodes
  const NodeId is_alu = b.band(op_oh[0x0], fetch_ok);
  const NodeId is_addi = b.band(op_oh[0x1], fetch_ok);
  const NodeId is_lui = b.band(op_oh[0x2], fetch_ok);
  const NodeId is_ori = b.band(op_oh[0x3], fetch_ok);
  const NodeId is_lw = b.band(op_oh[0x4], fetch_ok);
  const NodeId is_sw = b.band(op_oh[0x5], fetch_ok);
  const NodeId is_beq = b.band(op_oh[0x6], fetch_ok);
  const NodeId is_bne = b.band(op_oh[0x7], fetch_ok);
  const NodeId is_jmp = b.band(op_oh[0x8], fetch_ok);
  const NodeId is_halt = b.band(op_oh[0x9], fetch_ok);

  const Word rd_sel = b.slice(instr, 9, 3);
  const Word ra_sel = b.slice(instr, 6, 3);
  const Word rb_sel = b.slice(instr, 3, 3);
  const Word funct = b.slice(instr, 0, 3);

  // imm6 sign-extended to 16 bits.
  Word imm6 = b.slice(instr, 0, 6);
  const NodeId imm6_sign = instr[5];
  while (imm6.size() < 16) imm6.push_back(b.bbuf(imm6_sign));
  // imm8 zero-extended / shifted for LUI.
  const Word imm8 = b.slice(instr, 0, 8);
  const Word imm8_z = b.zext(imm8, 16);
  const Word lui_val = b.concat(b.constant_word(0, 8), imm8);
  const Word imm12_z = b.zext(b.slice(instr, 0, 12), 16);

  // --- register file read ------------------------------------------------
  const Word rd_val = b.mux_tree(rd_sel, regs);
  const Word ra_val = b.mux_tree(ra_sel, regs);
  const Word rb_val = b.mux_tree(rb_sel, regs);

  // --- ALU ------------------------------------------------------------
  const Word alu_add = b.add_word(ra_val, rb_val);
  const Word alu_sub = b.sub_word(ra_val, rb_val);
  const Word alu_and = b.and_word(ra_val, rb_val);
  const Word alu_or = b.or_word(ra_val, rb_val);
  const Word alu_xor = b.xor_word(ra_val, rb_val);
  const Word shamt = b.slice(rb_val, 0, 4);
  const Word alu_shl = b.shl_word(ra_val, shamt);
  const Word alu_shr = b.shr_word(ra_val, shamt);
  const std::vector<Word> alu_choices = {alu_add, alu_sub, alu_and, alu_or,
                                         alu_xor, alu_shl, alu_shr, ra_val};
  const Word alu_y = b.mux_tree(funct, alu_choices);

  const Word addi_y = b.add_word(ra_val, imm6);
  const Word ori_y = b.or_word(rd_val, imm8_z);

  // --- memory address & MPU check ------------------------------------
  const Word addr = b.add_word(ra_val, imm6);
  const NodeId is_mem = b.bor(is_lw, is_sw);
  // Device page: addr[15:8] == 0xFF.
  const Word addr_hi = b.slice(addr, 8, 8);
  const NodeId is_device = b.reduce_and(addr_hi);

  std::vector<NodeId> region_allows;
  for (int k = 0; k < kMpuRegionCount; ++k) {
    const NodeId enabled = mpu[static_cast<std::size_t>(k)].perm[2];
    const NodeId in_lo = b.uge(addr, mpu[static_cast<std::size_t>(k)].base);
    const NodeId in_hi = b.ule(addr, mpu[static_cast<std::size_t>(k)].limit);
    const NodeId perm_ok =
        b.bmux(is_sw, mpu[static_cast<std::size_t>(k)].perm[0],
               mpu[static_cast<std::size_t>(k)].perm[1]);
    region_allows.push_back(
        b.band(b.band(enabled, b.band(in_lo, in_hi)), perm_ok));
  }
  const NodeId any_region = b.or_all(region_allows);
  const NodeId allowed = b.bor(b.bnot(mpu_enable[0]), any_region);
  const NodeId checked = b.band(is_mem, b.bnot(is_device));
  const NodeId data_viol =
      nl_.add_gate(CellType::kAnd, {checked, b.bnot(allowed)}, "mpu_viol_raw");

  // --- DMA (peripheral) access checks ----------------------------------
  // The engine moves one word per active cycle; both its read and its write
  // go through the same MPU region checks as core accesses (paper Fig. 1),
  // and the device page is off-limits.
  auto dma_bank = [&](const Word& a, int perm_bit) {
    std::vector<NodeId> allows;
    for (int k = 0; k < kMpuRegionCount; ++k) {
      const auto& rr = mpu[static_cast<std::size_t>(k)];
      allows.push_back(b.band(
          b.band(rr.perm[2], b.band(b.uge(a, rr.base), b.ule(a, rr.limit))),
          rr.perm[static_cast<std::size_t>(perm_bit)]));
    }
    return b.bor(b.bnot(mpu_enable[0]), b.or_all(allows));
  };
  const NodeId dma_len_nz = b.reduce_or(dma_len);
  const NodeId dma_pending = b.band(dma_active[0], dma_len_nz);
  const NodeId dma_transfer = b.band(dma_pending, running);
  const NodeId src_dev = b.reduce_and(b.slice(dma_src, 8, 8));
  const NodeId dst_dev = b.reduce_and(b.slice(dma_dst, 8, 8));
  const NodeId dma_src_ok = b.band(b.bnot(src_dev), dma_bank(dma_src, 0));
  const NodeId dma_dst_ok = b.band(b.bnot(dst_dev), dma_bank(dma_dst, 1));
  const NodeId dma_ok = b.band(dma_src_ok, dma_dst_ok);
  const NodeId dma_viol = b.band(dma_pending, b.bnot(dma_ok));
  const NodeId dma_commit =
      nl_.add_gate(CellType::kAnd, {dma_transfer, dma_ok}, "dma_write");

  const NodeId viol =
      b.bor(b.bor(data_viol, fetch_denied), dma_viol);
  // The responding signal proper: gated by `running` so a halted core cannot
  // raise violations (matches rtl::Machine, which early-outs when halted).
  const NodeId viol_live = nl_.add_gate(CellType::kAnd, {viol, running},
                                        "mpu_viol");

  // --- device page ----------------------------------------------------
  // Region register area: offsets 0x00..0x1F (addr[7:5] == 0).
  const Word dev_off = b.slice(addr, 0, 8);
  const NodeId in_region_area =
      b.bnor(b.bor(dev_off[5], dev_off[6]), dev_off[7]);
  const Word reg_word_sel = b.slice(addr, 0, 3);   // base/limit/perm/...
  const Word region_sel = b.slice(addr, 3, 2);     // region index
  const Word reg_word_oh = b.decoder(reg_word_sel);
  const Word region_oh = b.decoder(region_sel);

  // Device read mux.
  const Word zero16 = b.constant_word(0, 16);
  std::vector<Word> region_read_words;
  for (int k = 0; k < kMpuRegionCount; ++k) {
    const auto& rr = mpu[static_cast<std::size_t>(k)];
    const std::vector<Word> words = {rr.base, rr.limit, b.zext(rr.perm, 16),
                                     zero16, zero16, zero16, zero16, zero16};
    region_read_words.push_back(b.mux_tree(reg_word_sel, words));
  }
  const Word region_rdata = b.mux_tree(region_sel, region_read_words);

  const NodeId is_dma_src = b.eq_word(addr, b.constant_word(rtl::kDmaSrcAddr, 16));
  const NodeId is_dma_dst = b.eq_word(addr, b.constant_word(rtl::kDmaDstAddr, 16));
  const NodeId is_dma_len = b.eq_word(addr, b.constant_word(rtl::kDmaLenAddr, 16));
  const NodeId is_dma_ctrl = b.eq_word(addr, b.constant_word(rtl::kDmaCtrlAddr, 16));
  const NodeId is_ff20 = b.eq_word(addr, b.constant_word(rtl::kMpuViolFlagAddr, 16));
  const NodeId is_ff21 = b.eq_word(addr, b.constant_word(rtl::kMpuViolAddrAddr, 16));
  const NodeId is_ff22 = b.eq_word(addr, b.constant_word(rtl::kMpuEnableAddr, 16));
  Word status_rdata = zero16;
  const Word ctrl_bits = b.concat(mpu_enable, instr_check);
  status_rdata = b.mux_word(is_dma_src, status_rdata, dma_src);
  status_rdata = b.mux_word(is_dma_dst, status_rdata, dma_dst);
  status_rdata = b.mux_word(is_dma_len, status_rdata, dma_len);
  status_rdata = b.mux_word(is_dma_ctrl, status_rdata, b.zext(dma_active, 16));
  status_rdata = b.mux_word(is_ff22, status_rdata, b.zext(ctrl_bits, 16));
  status_rdata = b.mux_word(is_ff21, status_rdata, viol_addr);
  status_rdata = b.mux_word(is_ff20, status_rdata, b.zext(viol_sticky, 16));
  const Word device_rdata =
      b.mux_word(in_region_area, status_rdata, region_rdata);

  // Load result: device value, RAM data, or 0 when squashed.
  const Word checked_rdata = b.mux_word(allowed, zero16, ports_.mem_rdata);
  const Word lw_val = b.mux_word(is_device, checked_rdata, device_rdata);

  // --- register file write-back ----------------------------------------
  Word wb = alu_y;
  wb = b.mux_word(is_addi, wb, addi_y);
  wb = b.mux_word(is_lui, wb, lui_val);
  wb = b.mux_word(is_ori, wb, ori_y);
  wb = b.mux_word(is_lw, wb, lw_val);
  const NodeId reg_we = b.or_all(std::vector<NodeId>{
      is_alu, is_addi, is_lui, is_ori, is_lw});
  const Word rd_oh = b.decoder(rd_sel);
  for (int r = 0; r < 8; ++r) {
    const NodeId we =
        b.band(b.band(reg_we, rd_oh[static_cast<std::size_t>(r)]), running);
    const Word next = b.mux_word(we, regs[static_cast<std::size_t>(r)], wb);
    b.connect_word(regs[static_cast<std::size_t>(r)], next);
  }

  // --- PC update --------------------------------------------------------
  const NodeId eq_ab = b.eq_word(rd_val, ra_val);
  const NodeId take_branch = b.bor(b.band(is_beq, eq_ab),
                                   b.band(is_bne, b.bnot(eq_ab)));
  const Word br_target = b.add_word(pc, imm6);
  Word next_pc = b.increment(pc);
  next_pc = b.mux_word(take_branch, next_pc, br_target);
  next_pc = b.mux_word(is_jmp, next_pc, imm12_z);
  next_pc = b.mux_word(is_halt, next_pc, pc);
  next_pc = b.mux_word(running, pc, next_pc);  // hold PC once halted
  b.connect_word(pc, next_pc);

  // --- device writes (MPU configuration) -------------------------------
  const NodeId dev_write = b.band(b.band(is_sw, is_device), running);
  const NodeId region_write = b.band(dev_write, in_region_area);
  for (int k = 0; k < kMpuRegionCount; ++k) {
    auto& rr = mpu[static_cast<std::size_t>(k)];
    const NodeId this_region =
        b.band(region_write, region_oh[static_cast<std::size_t>(k)]);
    const NodeId we_base = b.band(this_region, reg_word_oh[0]);
    const NodeId we_limit = b.band(this_region, reg_word_oh[1]);
    const NodeId we_perm = b.band(this_region, reg_word_oh[2]);
    b.connect_word(rr.base, b.mux_word(we_base, rr.base, rd_val));
    b.connect_word(rr.limit, b.mux_word(we_limit, rr.limit, rd_val));
    b.connect_word(rr.perm,
                   b.mux_word(we_perm, rr.perm, b.slice(rd_val, 0, rtl::kPermBits)));
  }
  const NodeId we_flag = b.band(dev_write, is_ff20);
  const NodeId we_enable = b.band(dev_write, is_ff22);
  // Sticky flag: set on violation, cleared by any write to 0xFF20. A device
  // write and a checked violation are mutually exclusive by construction.
  const NodeId sticky_next =
      b.band(b.bor(viol_sticky[0], viol_live), b.bnot(we_flag));
  b.connect_word(viol_sticky, {sticky_next});
  const NodeId enable_next = b.bmux(we_enable, mpu_enable[0], rd_val[0]);
  b.connect_word(mpu_enable, {enable_next});
  const NodeId icheck_next = b.bmux(we_enable, instr_check[0], rd_val[1]);
  b.connect_word(instr_check, {icheck_next});
  // viol_addr latches the first violation only; priority fetch > core data
  // > DMA (a squashed fetch issues no data access, and the behavioural model
  // applies the same ordering).
  const NodeId latch_addr = b.band(viol_live, b.bnot(viol_sticky[0]));
  const Word dma_bad_addr = b.mux_word(dma_src_ok, dma_src, dma_dst);
  Word viol_source = b.mux_word(data_viol, dma_bad_addr, addr);
  viol_source = b.mux_word(fetch_denied, viol_source, pc);
  b.connect_word(viol_addr, b.mux_word(latch_addr, viol_addr, viol_source));

  // --- DMA register updates ---------------------------------------------
  const NodeId dma_idle = b.bnot(dma_active[0]);
  const NodeId we_dsrc = b.band(b.band(dev_write, is_dma_src), dma_idle);
  const NodeId we_ddst = b.band(b.band(dev_write, is_dma_dst), dma_idle);
  const NodeId we_dlen = b.band(b.band(dev_write, is_dma_len), dma_idle);
  const NodeId we_dctrl = b.band(b.band(dev_write, is_dma_ctrl), dma_idle);
  Word src_next = b.mux_word(we_dsrc, dma_src, rd_val);
  src_next = b.mux_word(dma_commit, src_next, b.increment(dma_src));
  b.connect_word(dma_src, src_next);
  Word dst_next = b.mux_word(we_ddst, dma_dst, rd_val);
  dst_next = b.mux_word(dma_commit, dst_next, b.increment(dma_dst));
  b.connect_word(dma_dst, dst_next);
  Word len_next = b.mux_word(we_dlen, dma_len, rd_val);
  len_next = b.mux_word(dma_commit, len_next,
                        b.add_word(dma_len, b.constant_word(0xFFFF, 16)));
  b.connect_word(dma_len, len_next);
  // active: set by a start write (idle, bit 0, len != 0); cleared when the
  // transfer completes (last word) or aborts on a violation.
  const NodeId dma_start = b.band(b.band(we_dctrl, rd_val[0]), dma_len_nz);
  const NodeId len_gt1 = b.reduce_or(b.slice(dma_len, 1, 15));
  const NodeId keep_active =
      b.band(dma_active[0],
             b.bor(b.bnot(dma_transfer), b.band(dma_ok, len_gt1)));
  b.connect_word(dma_active, {b.bor(keep_active, dma_start)});

  // halted is set by HALT and never cleared.
  const NodeId halted_next = b.bor(halted_bit, b.band(is_halt, running));
  b.connect_word(halted, {halted_next});

  // --- external memory ports ------------------------------------------
  ports_.pc = pc;
  ports_.mem_addr = addr;
  ports_.mem_wdata = rd_val;
  ports_.mem_read = nl_.add_gate(
      CellType::kAnd, {b.band(is_lw, b.bnot(is_device)),
                       b.band(allowed, running)},
      "mem_read");
  ports_.mem_write = nl_.add_gate(
      CellType::kAnd, {b.band(is_sw, b.bnot(is_device)),
                       b.band(allowed, running)},
      "mem_write");
  ports_.mpu_viol = viol_live;
  ports_.halted = halted_bit;
  ports_.dma_transfer = dma_transfer;
  ports_.dma_write = dma_commit;
  ports_.dma_src = dma_src;
  ports_.dma_dst = dma_dst;

  for (int i = 0; i < 16; ++i) {
    nl_.set_output("pc_out[" + std::to_string(i) + "]", pc[static_cast<std::size_t>(i)]);
    nl_.set_output("mem_addr[" + std::to_string(i) + "]", addr[static_cast<std::size_t>(i)]);
    nl_.set_output("mem_wdata[" + std::to_string(i) + "]", rd_val[static_cast<std::size_t>(i)]);
  }
  nl_.set_output("mem_read", ports_.mem_read);
  nl_.set_output("mem_write", ports_.mem_write);
  nl_.set_output("mpu_viol_out", ports_.mpu_viol);
  nl_.set_output("halted_out", halted_bit);
  nl_.set_output("dma_write_out", dma_commit);
}

}  // namespace fav::soc
