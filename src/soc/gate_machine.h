// Gate-level testbench around SocNetlist: the netlist plus behavioural ROM
// and RAM models, clocked cycle by cycle.
//
// Used to verify RTL/gate equivalence and as the substrate the fault-
// injection-cycle simulator operates on. State crosses levels through
// rtl::ArchState via the 1:1 DFF binding.
#pragma once

#include "netlist/logicsim.h"
#include "rtl/machine.h"
#include "soc/soc_netlist.h"

namespace fav::soc {

class GateLevelMachine {
 public:
  /// Both references must outlive this object.
  GateLevelMachine(const SocNetlist& soc, const rtl::Program& program);
  GateLevelMachine(const SocNetlist&, rtl::Program&&) = delete;

  void reset();

  /// Executes one clock cycle; returns the same observability structure as
  /// the behavioural model.
  rtl::StepInfo step();
  std::uint64_t run(std::uint64_t cycles);

  bool halted() const;
  std::uint64_t cycle() const { return cycle_; }

  /// Lifetime totals, never reset — observability counters for the Monte
  /// Carlo engine's gate-sim cost metrics. A settle is two combinational
  /// evaluation passes over the whole netlist; step() performs one settle
  /// plus the clock edge.
  std::uint64_t total_settles() const { return total_settles_; }
  std::uint64_t total_steps() const { return total_steps_; }

  /// Architectural state extracted from / loaded into the netlist DFFs.
  rtl::ArchState extract_state() const;
  void load_state(const rtl::ArchState& state);

  const rtl::Memory& ram() const { return ram_; }
  rtl::Memory& mutable_ram() { return ram_; }

  const netlist::LogicSimulator& sim() const { return sim_; }
  netlist::LogicSimulator& mutable_sim() { return sim_; }
  const SocNetlist& soc() const { return *soc_; }

  /// Drives instr/mem_rdata inputs for the current cycle and settles the
  /// combinational logic (two evaluation passes: fetch, then memory read
  /// data). Does not advance the clock. Exposed so the fault-injection
  /// simulator can prepare the injection cycle's side-input values.
  void settle_inputs();

  /// Copies the settled scalar state into every lane of `words` (all-ones /
  /// all-zeros words). Callers must have run settle_inputs() first; this is
  /// the hand-off from the shared injection-cycle settle to the 64-lane
  /// batch flip-set evaluation.
  void broadcast_settled(netlist::WordSimulator& words) const;

 private:
  std::uint16_t read_output_word(const gen::Word& w) const;

  const SocNetlist* soc_;
  const rtl::Program* program_;
  netlist::LogicSimulator sim_;
  rtl::Memory ram_;
  std::uint64_t cycle_ = 0;
  std::uint64_t total_settles_ = 0;
  std::uint64_t total_steps_ = 0;
};

}  // namespace fav::soc
