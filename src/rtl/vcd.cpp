#include "rtl/vcd.h"

#include "rtl/machine.h"

namespace fav::rtl {

VcdWriter::VcdWriter(std::ostream& os, std::string top_module)
    : os_(&os), top_(std::move(top_module)) {
  last_.assign(RegisterMap::mcu16().fields().size(), 0);
}

std::string VcdWriter::code_for(std::size_t index) const {
  // Short printable identifier codes: !, ", #, ... (VCD allows any
  // printable ASCII); two characters once the single range is exhausted.
  std::string code;
  std::size_t v = index;
  do {
    code += static_cast<char>('!' + (v % 94));
    v /= 94;
  } while (v != 0);
  return code;
}

void VcdWriter::write_header() {
  const RegisterMap& map = RegisterMap::mcu16();
  *os_ << "$version fav rtl::VcdWriter $end\n";
  *os_ << "$timescale 1ns $end\n";
  *os_ << "$scope module " << top_ << " $end\n";
  for (std::size_t fi = 0; fi < map.fields().size(); ++fi) {
    const auto& f = map.fields()[fi];
    *os_ << "$var reg " << f.width << " " << code_for(fi) << " " << f.name
         << " $end\n";
  }
  *os_ << "$upscope $end\n$enddefinitions $end\n";
  header_written_ = true;
}

void VcdWriter::sample(std::uint64_t cycle, const ArchState& state) {
  const RegisterMap& map = RegisterMap::mcu16();
  if (!header_written_) write_header();
  *os_ << "#" << cycle << "\n";
  for (std::size_t fi = 0; fi < map.fields().size(); ++fi) {
    const std::uint32_t v = map.get_field(state, static_cast<int>(fi));
    if (samples_ > 0 && v == last_[fi]) continue;
    last_[fi] = v;
    const int width = map.fields()[fi].width;
    if (width == 1) {
      *os_ << (v & 1u) << code_for(fi) << "\n";
    } else {
      *os_ << "b";
      for (int b = width - 1; b >= 0; --b) *os_ << ((v >> b) & 1u);
      *os_ << " " << code_for(fi) << "\n";
    }
  }
  ++samples_;
}

}  // namespace fav::rtl
