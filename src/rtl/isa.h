// MCU16 instruction set architecture.
//
// MCU16 is the micro-controller-class core that substitutes for the paper's
// commercial processor (see DESIGN.md §2). It is a 16-bit, word-addressed,
// single-cycle RISC with 8 general-purpose registers and a memory-mapped
// 4-region MPU. The gate-level elaboration in src/soc implements exactly the
// semantics defined here; the behavioural model in machine.h is the RTL-level
// reference.
//
// Instruction formats (16-bit):
//   [15:12] opcode | [11:9] rd / rs / rA | [8:6] ra / base / rB | [5:3] rb
//   [5:0] imm6 (signed) | [7:0] imm8 | [11:0] imm12
#pragma once

#include <cstdint>
#include <string>

namespace fav::rtl {

enum class Opcode : std::uint8_t {
  kAlu = 0x0,   // rd = ra <f3> rb
  kAddi = 0x1,  // rd = ra + sext(imm6)
  kLui = 0x2,   // rd = imm8 << 8
  kOri = 0x3,   // rd = rd | imm8
  kLw = 0x4,    // rd = mem[ra + sext(imm6)]
  kSw = 0x5,    // mem[ra + sext(imm6)] = r[instr[11:9]]
  kBeq = 0x6,   // if r[11:9] == r[8:6]: pc += sext(imm6)
  kBne = 0x7,   // if r[11:9] != r[8:6]: pc += sext(imm6)
  kJmp = 0x8,   // pc = imm12
  kHalt = 0x9,  // stop; pc holds
  kNop = 0xA,   // no operation (0xB..0xF decode as NOP too)
};

enum class AluFunct : std::uint8_t {
  kAdd = 0,
  kSub = 1,
  kAnd = 2,
  kOr = 3,
  kXor = 4,
  kShl = 5,  // shift amount = rb value & 0xF
  kShr = 6,
  kMov = 7,  // rd = ra
};

/// Decoded instruction fields (raw, before semantic interpretation).
struct Instr {
  std::uint16_t raw = 0;

  Opcode opcode() const {
    const auto op = static_cast<std::uint8_t>(raw >> 12);
    return op <= 0xA ? static_cast<Opcode>(op) : Opcode::kNop;
  }
  int rd() const { return (raw >> 9) & 7; }
  int ra() const { return (raw >> 6) & 7; }
  int rb() const { return (raw >> 3) & 7; }
  AluFunct funct() const { return static_cast<AluFunct>(raw & 7); }
  std::uint8_t imm8() const { return static_cast<std::uint8_t>(raw & 0xFF); }
  std::uint16_t imm12() const { return raw & 0x0FFF; }
  /// Sign-extended 6-bit immediate.
  std::int16_t imm6() const {
    const auto v = static_cast<std::int16_t>(raw & 0x3F);
    return (v & 0x20) ? static_cast<std::int16_t>(v - 0x40) : v;
  }
};

/// --- encoders (used by the assembler and tests) -------------------------
inline std::uint16_t encode_alu(AluFunct f, int rd, int ra, int rb) {
  return static_cast<std::uint16_t>((0x0 << 12) | ((rd & 7) << 9) |
                                    ((ra & 7) << 6) | ((rb & 7) << 3) |
                                    static_cast<int>(f));
}
inline std::uint16_t encode_imm6(Opcode op, int rd, int ra, int imm6) {
  return static_cast<std::uint16_t>((static_cast<int>(op) << 12) |
                                    ((rd & 7) << 9) | ((ra & 7) << 6) |
                                    (imm6 & 0x3F));
}
inline std::uint16_t encode_imm8(Opcode op, int rd, int imm8) {
  return static_cast<std::uint16_t>((static_cast<int>(op) << 12) |
                                    ((rd & 7) << 9) | (imm8 & 0xFF));
}
inline std::uint16_t encode_jmp(int imm12) {
  return static_cast<std::uint16_t>((0x8 << 12) | (imm12 & 0xFFF));
}
inline std::uint16_t encode_halt() { return 0x9 << 12; }
inline std::uint16_t encode_nop() { return 0xA << 12; }

/// Disassembles one instruction (for traces and debugging).
std::string disassemble(Instr instr);

/// --- memory map ------------------------------------------------------------
// Word addresses; everything at or above kDeviceBase bypasses the MPU data
// check and addresses the device page (MPU configuration + status).
inline constexpr std::uint16_t kDeviceBase = 0xFF00;
inline constexpr int kMpuRegionCount = 4;
/// Region k register file: base at +8k, limit at +8k+1, perm at +8k+2.
inline constexpr std::uint16_t kMpuRegionStride = 8;
inline constexpr std::uint16_t kMpuViolFlagAddr = 0xFF20;  // write clears
inline constexpr std::uint16_t kMpuViolAddrAddr = 0xFF21;
inline constexpr std::uint16_t kMpuEnableAddr = 0xFF22;

/// Region permission bits.
inline constexpr std::uint8_t kPermRead = 1;
inline constexpr std::uint8_t kPermWrite = 2;
inline constexpr std::uint8_t kPermEnable = 4;
inline constexpr std::uint8_t kPermExec = 8;
inline constexpr int kPermBits = 4;

/// Control-register (kMpuEnableAddr) bits: bit 0 enables the MPU's data
/// access check, bit 1 additionally enables the instruction access check
/// (paper Fig. 1 shows both check paths). A denied fetch executes as a NOP
/// and raises the violation signal with viol_addr = pc.
inline constexpr std::uint16_t kMpuCtrlEnable = 1;
inline constexpr std::uint16_t kMpuCtrlInstrCheck = 2;

/// DMA engine (the "peripheral" bus master of paper Fig. 1; its accesses go
/// through the same MPU data checks as the core's). Word registers:
///   +0 source, +1 destination, +2 length, +3 control/status (bit 0: write 1
///   to start, reads back the active flag). While active, one word moves per
///   cycle; src/dst/len are write-locked. A denied access (or any device-page
///   address) raises the violation signal and aborts the transfer.
inline constexpr std::uint16_t kDmaBase = 0xFF30;
inline constexpr std::uint16_t kDmaSrcAddr = 0xFF30;
inline constexpr std::uint16_t kDmaDstAddr = 0xFF31;
inline constexpr std::uint16_t kDmaLenAddr = 0xFF32;
inline constexpr std::uint16_t kDmaCtrlAddr = 0xFF33;

}  // namespace fav::rtl
