// Behavioural (RTL-level) cycle-accurate model of MCU16.
//
// This plays the role of the commercial RTL simulator in the paper's flow:
// fast golden runs, checkpoint restart, and post-injection resumption all
// execute here. Every architectural register is addressable through
// RegisterMap so bit errors can be written back from the gate level
// ("restore RTL-level simulation" step of Fig. 5).
#pragma once

#include <cstdint>
#include <string>
#include <utility>
#include <vector>

#include "util/check.h"

#include "rtl/isa.h"
#include "rtl/registers.h"

namespace fav::rtl {

/// A benchmark image: instruction ROM plus initial RAM contents.
struct Program {
  std::vector<std::uint16_t> rom;
  std::vector<std::pair<std::uint16_t, std::uint16_t>> ram_init;
  /// Label addresses from the assembler (for tooling and benchmarks).
  std::vector<std::pair<std::string, std::uint16_t>> labels;

  std::uint16_t label(const std::string& name) const {
    for (const auto& [n, addr] : labels) {
      if (n == name) return addr;
    }
    FAV_ENSURE_MSG(false, "no label named '" << name << "'");
    return 0;
  }

  std::uint16_t fetch(std::uint16_t pc) const {
    return pc < rom.size() ? rom[pc] : encode_nop();
  }
};

/// 64K x 16 word-addressed RAM.
class Memory {
 public:
  Memory() : words_(1 << 16, 0) {}

  std::uint16_t read(std::uint16_t addr) const { return words_[addr]; }
  void write(std::uint16_t addr, std::uint16_t value) { words_[addr] = value; }

  bool operator==(const Memory&) const = default;

 private:
  std::vector<std::uint16_t> words_;
};

/// Everything observable about one executed cycle; used by tests, the
/// equivalence harness, and the attack-success oracles.
struct StepInfo {
  Instr instr{};      // the fetched word (even when the fetch was denied)
  bool fetch_denied = false;
  bool mem_read = false;
  bool mem_write = false;       // request, before MPU squashing
  bool mem_write_done = false;  // write actually performed
  std::uint16_t mem_addr = 0;
  std::uint16_t mem_wdata = 0;
  std::uint16_t mem_rdata = 0;
  /// The responding signal: a checked access (core data, instruction fetch,
  /// or DMA) was denied this cycle. dma_viol/fetch_denied attribute the
  /// source.
  bool mpu_viol = false;
  /// DMA (peripheral) activity this cycle.
  bool dma_read = false;        // transfer attempted a read of dma_addr_src
  bool dma_write_done = false;  // transfer wrote dma_addr_dst
  bool dma_viol = false;        // a DMA access was denied (aborts the DMA)
  std::uint16_t dma_addr_src = 0;
  std::uint16_t dma_addr_dst = 0;
};

class Machine {
 public:
  explicit Machine(const Program& program);
  /// Machine keeps a reference to the program: temporaries would dangle.
  explicit Machine(Program&&) = delete;

  /// Resets architectural state and reloads initial RAM.
  void reset();

  /// Executes one cycle (no-op once halted, except the cycle counter).
  StepInfo step();
  /// Runs up to `cycles` cycles; stops early on halt. Returns cycles run.
  std::uint64_t run(std::uint64_t cycles);

  const ArchState& state() const { return state_; }
  ArchState& mutable_state() { return state_; }
  void set_state(const ArchState& s) { state_ = s; }

  const Memory& ram() const { return ram_; }
  Memory& mutable_ram() { return ram_; }

  std::uint64_t cycle() const { return cycle_; }
  void set_cycle(std::uint64_t c) { cycle_ = c; }
  bool halted() const { return state_.halted; }

  const Program& program() const { return *program_; }
  static const RegisterMap& reg_map() { return RegisterMap::mcu16(); }

  /// Pure MPU policy check (also used by the analytical evaluator in mc/):
  /// does `state` permit the given data access? Device-page addresses are
  /// never checked.
  static bool mpu_allows(const ArchState& state, std::uint16_t addr,
                         bool is_write);
  /// Instruction-fetch check: trivially true unless both the MPU and the
  /// instruction access check are enabled.
  static bool mpu_allows_exec(const ArchState& state, std::uint16_t pc);

 private:
  std::uint16_t device_read(std::uint16_t addr) const;
  void device_write(std::uint16_t addr, std::uint16_t value);

  const Program* program_;
  ArchState state_;
  Memory ram_;
  std::uint64_t cycle_ = 0;
};

}  // namespace fav::rtl
