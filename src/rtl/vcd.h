// Value-change-dump (VCD) tracing of the architectural state.
//
// Produces standard VCD that any waveform viewer (GTKWave etc.) opens —
// the debugging view of a fault-attack run: dump a golden run and a faulty
// run and diff the register traces to see the corruption propagate.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <vector>

#include "rtl/registers.h"

namespace fav::rtl {

class VcdWriter {
 public:
  /// Declares one VCD variable per register field of the map.
  VcdWriter(std::ostream& os, std::string top_module = "mcu16");

  /// Records the state at time `cycle` (only changed fields are emitted).
  void sample(std::uint64_t cycle, const ArchState& state);

  std::size_t samples_written() const { return samples_; }

 private:
  std::string code_for(std::size_t index) const;
  void write_header();

  std::ostream* os_;
  std::string top_;
  bool header_written_ = false;
  std::size_t samples_ = 0;
  std::vector<std::uint32_t> last_;  // last emitted value per field
};

}  // namespace fav::rtl
