#include "rtl/assembler.h"

#include <cctype>
#include <map>
#include <sstream>
#include <vector>

#include "util/check.h"

namespace fav::rtl {

namespace {

struct Token {
  std::string text;
};

std::vector<std::string> tokenize(const std::string& line) {
  std::string clean;
  for (char c : line) {
    if (c == ';' || c == '#') break;
    clean += (c == ',') ? ' ' : c;
  }
  std::istringstream is(clean);
  std::vector<std::string> out;
  std::string tok;
  while (is >> tok) out.push_back(tok);
  return out;
}

bool is_integer(const std::string& s) {
  if (s.empty()) return false;
  std::size_t i = (s[0] == '-' || s[0] == '+') ? 1 : 0;
  if (i >= s.size()) return false;
  if (s.size() > i + 2 && s[i] == '0' && (s[i + 1] == 'x' || s[i + 1] == 'X')) {
    for (std::size_t j = i + 2; j < s.size(); ++j) {
      if (!std::isxdigit(static_cast<unsigned char>(s[j]))) return false;
    }
    return true;
  }
  for (std::size_t j = i; j < s.size(); ++j) {
    if (!std::isdigit(static_cast<unsigned char>(s[j]))) return false;
  }
  return true;
}

long parse_int(const std::string& s, int line_no) {
  FAV_ENSURE_MSG(is_integer(s), "line " << line_no << ": expected number, got '"
                                       << s << "'");
  return std::stol(s, nullptr, 0);
}

int parse_reg(const std::string& s, int line_no) {
  FAV_ENSURE_MSG(s.size() == 2 && (s[0] == 'r' || s[0] == 'R') &&
                    s[1] >= '0' && s[1] <= '7',
                "line " << line_no << ": expected register r0..r7, got '" << s
                        << "'");
  return s[1] - '0';
}

struct Stmt {
  int line_no;
  std::vector<std::string> tokens;  // mnemonic + operands
  int address;                      // rom word address
};

bool is_mnemonic(const std::string& m) {
  static const char* kAll[] = {"add", "sub", "and", "or",  "xor",  "shl",
                               "shr", "mov", "addi", "lui", "ori", "li",
                               "lw",  "sw",  "beq",  "bne", "jmp", "halt",
                               "nop"};
  for (const char* k : kAll) {
    if (m == k) return true;
  }
  return false;
}

int words_for(const std::string& mnemonic) {
  return mnemonic == "li" ? 2 : 1;
}

}  // namespace

Program assemble(const std::string& source) {
  Program prog;
  std::map<std::string, int> labels;
  std::vector<Stmt> stmts;

  // Pass 1: strip labels, record addresses, collect .data directives.
  std::istringstream is(source);
  std::string line;
  int line_no = 0;
  int address = 0;
  while (std::getline(is, line)) {
    ++line_no;
    auto tokens = tokenize(line);
    // Peel leading labels ("name:" possibly glued or separate).
    while (!tokens.empty()) {
      std::string& t = tokens.front();
      if (t.back() == ':') {
        std::string name = t.substr(0, t.size() - 1);
        FAV_ENSURE_MSG(!name.empty(), "line " << line_no << ": empty label");
        FAV_ENSURE_MSG(!labels.count(name),
                      "line " << line_no << ": duplicate label '" << name << "'");
        labels[name] = address;
        tokens.erase(tokens.begin());
      } else {
        break;
      }
    }
    if (tokens.empty()) continue;
    if (tokens[0] == ".data") {
      FAV_ENSURE_MSG(tokens.size() == 3,
                    "line " << line_no << ": .data needs <addr> <value>");
      const long addr = parse_int(tokens[1], line_no);
      const long value = parse_int(tokens[2], line_no);
      FAV_ENSURE_MSG(addr >= 0 && addr <= 0xFFFF,
                    "line " << line_no << ": .data address out of range");
      prog.ram_init.emplace_back(static_cast<std::uint16_t>(addr),
                                 static_cast<std::uint16_t>(value & 0xFFFF));
      continue;
    }
    FAV_ENSURE_MSG(is_mnemonic(tokens[0]),
                  "line " << line_no << ": unknown mnemonic '" << tokens[0]
                          << "'");
    stmts.push_back({line_no, tokens, address});
    address += words_for(tokens[0]);
  }

  // Pass 2: encode.
  auto resolve = [&](const std::string& s, int ln) -> long {
    if (is_integer(s)) return parse_int(s, ln);
    const auto it = labels.find(s);
    FAV_ENSURE_MSG(it != labels.end(),
                  "line " << ln << ": undefined label '" << s << "'");
    return it->second;
  };
  auto check_range = [](long v, long lo, long hi, int ln, const char* what) {
    FAV_ENSURE_MSG(v >= lo && v <= hi, "line " << ln << ": " << what << " "
                                              << v << " out of range [" << lo
                                              << ", " << hi << "]");
  };

  for (const auto& [name, addr] : labels) {
    prog.labels.emplace_back(name, static_cast<std::uint16_t>(addr));
  }

  for (const Stmt& st : stmts) {
    const std::string& m = st.tokens[0];
    const int ln = st.line_no;
    auto need = [&](std::size_t n) {
      FAV_ENSURE_MSG(st.tokens.size() == n + 1,
                    "line " << ln << ": '" << m << "' needs " << n
                            << " operands");
    };

    if (m == "add" || m == "sub" || m == "and" || m == "or" || m == "xor" ||
        m == "shl" || m == "shr") {
      need(3);
      AluFunct f = AluFunct::kAdd;
      if (m == "sub") f = AluFunct::kSub;
      if (m == "and") f = AluFunct::kAnd;
      if (m == "or") f = AluFunct::kOr;
      if (m == "xor") f = AluFunct::kXor;
      if (m == "shl") f = AluFunct::kShl;
      if (m == "shr") f = AluFunct::kShr;
      prog.rom.push_back(encode_alu(f, parse_reg(st.tokens[1], ln),
                                    parse_reg(st.tokens[2], ln),
                                    parse_reg(st.tokens[3], ln)));
    } else if (m == "mov") {
      need(2);
      prog.rom.push_back(encode_alu(AluFunct::kMov,
                                    parse_reg(st.tokens[1], ln),
                                    parse_reg(st.tokens[2], ln), 0));
    } else if (m == "addi") {
      need(3);
      const long imm = parse_int(st.tokens[3], ln);
      check_range(imm, -32, 31, ln, "imm6");
      prog.rom.push_back(encode_imm6(Opcode::kAddi,
                                     parse_reg(st.tokens[1], ln),
                                     parse_reg(st.tokens[2], ln),
                                     static_cast<int>(imm)));
    } else if (m == "lui" || m == "ori") {
      need(2);
      const long imm = parse_int(st.tokens[2], ln);
      check_range(imm, 0, 255, ln, "imm8");
      prog.rom.push_back(encode_imm8(m == "lui" ? Opcode::kLui : Opcode::kOri,
                                     parse_reg(st.tokens[1], ln),
                                     static_cast<int>(imm)));
    } else if (m == "li") {
      need(2);
      const long imm = resolve(st.tokens[2], ln);
      check_range(imm, 0, 0xFFFF, ln, "imm16");
      const int rd = parse_reg(st.tokens[1], ln);
      prog.rom.push_back(encode_imm8(Opcode::kLui, rd, (imm >> 8) & 0xFF));
      prog.rom.push_back(encode_imm8(Opcode::kOri, rd, imm & 0xFF));
    } else if (m == "lw" || m == "sw") {
      need(3);
      const long imm = parse_int(st.tokens[3], ln);
      check_range(imm, -32, 31, ln, "imm6");
      prog.rom.push_back(encode_imm6(m == "lw" ? Opcode::kLw : Opcode::kSw,
                                     parse_reg(st.tokens[1], ln),
                                     parse_reg(st.tokens[2], ln),
                                     static_cast<int>(imm)));
    } else if (m == "beq" || m == "bne") {
      need(3);
      long target = resolve(st.tokens[3], ln);
      // Labels are absolute; immediates are already relative offsets.
      if (!is_integer(st.tokens[3])) target -= st.address;
      check_range(target, -32, 31, ln, "branch offset");
      prog.rom.push_back(encode_imm6(m == "beq" ? Opcode::kBeq : Opcode::kBne,
                                     parse_reg(st.tokens[1], ln),
                                     parse_reg(st.tokens[2], ln),
                                     static_cast<int>(target)));
    } else if (m == "jmp") {
      need(1);
      const long target = resolve(st.tokens[1], ln);
      check_range(target, 0, 0xFFF, ln, "jump target");
      prog.rom.push_back(encode_jmp(static_cast<int>(target)));
    } else if (m == "halt") {
      need(0);
      prog.rom.push_back(encode_halt());
    } else if (m == "nop") {
      need(0);
      prog.rom.push_back(encode_nop());
    }
  }
  return prog;
}

}  // namespace fav::rtl
