// Architectural register state of MCU16 and its canonical flat bit order.
//
// The RegisterMap defines a single, stable enumeration of every sequential
// bit in the design. The behavioural model, the gate-level netlist (whose
// DFFs are bound 1:1 to these bits by soc::SocNetlist), checkpoints, fault
// injection, and the pre-characterization all address state through this map,
// which is what makes the cross-level hand-off of the paper's Fig. 5 exact.
#pragma once

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "rtl/isa.h"
#include "util/bitvector.h"
#include "util/check.h"

namespace fav::rtl {

struct MpuRegion {
  std::uint16_t base = 0;
  std::uint16_t limit = 0;
  std::uint8_t perm = 0;  // kPermRead | kPermWrite | kPermEnable

  bool operator==(const MpuRegion&) const = default;
};

/// Complete sequential state of MCU16 (everything a checkpoint captures,
/// other than RAM contents).
struct ArchState {
  std::uint16_t pc = 0;
  std::array<std::uint16_t, 8> regs{};
  std::array<MpuRegion, kMpuRegionCount> mpu{};
  bool mpu_enable = false;
  bool instr_check = false;  // instruction access check (needs mpu_enable)
  bool viol_sticky = false;
  std::uint16_t viol_addr = 0;
  bool halted = false;
  // DMA engine (peripheral bus master).
  std::uint16_t dma_src = 0;
  std::uint16_t dma_dst = 0;
  std::uint16_t dma_len = 0;
  bool dma_active = false;

  bool operator==(const ArchState&) const = default;
};

/// One named register field in the canonical order.
struct RegisterField {
  std::string name;
  int width = 0;
  int offset = 0;  // flat bit offset of bit 0
  /// True for fields the ISA only writes during configuration or on rare
  /// events — the fields expected (but not assumed!) to characterize as
  /// memory-type. Pre-characterization measures this empirically; the flag
  /// exists only so tests can compare measurement against expectation.
  bool config_like = false;
};

class RegisterMap {
 public:
  /// The canonical map for MCU16.
  static const RegisterMap& mcu16();

  int total_bits() const { return total_bits_; }
  const std::vector<RegisterField>& fields() const { return fields_; }
  const RegisterField& field(int index) const;
  int field_index(const std::string& name) const;

  /// Maps a flat bit position to (field index, bit within field).
  std::pair<int, int> locate(int flat_bit) const;

  /// --- field accessors on ArchState -----------------------------------
  std::uint32_t get_field(const ArchState& s, int field_index) const;
  void set_field(ArchState& s, int field_index, std::uint32_t value) const;

  bool get_bit(const ArchState& s, int flat_bit) const;
  void set_bit(ArchState& s, int flat_bit, bool value) const;
  void flip_bit(ArchState& s, int flat_bit) const;

  /// Packs / unpacks the whole state into the canonical BitVector layout.
  BitVector pack(const ArchState& s) const;
  ArchState unpack(const BitVector& bits) const;

 private:
  RegisterMap();

  std::vector<RegisterField> fields_;
  std::vector<int> bit_to_field_;  // flat bit -> field index
  int total_bits_ = 0;
};

}  // namespace fav::rtl
