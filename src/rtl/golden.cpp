#include "rtl/golden.h"

#include <algorithm>

namespace fav::rtl {

GoldenRun::GoldenRun(const Program& program, std::uint64_t max_cycles,
                     std::uint64_t checkpoint_interval)
    : program_(&program) {
  FAV_ENSURE(checkpoint_interval > 0);
  Machine m(program);
  const RegisterMap& map = Machine::reg_map();

  states_.push_back(map.pack(m.state()));
  checkpoints_.push_back({0, m.state(), m.ram()});

  std::uint64_t cycle = 0;
  while (cycle < max_cycles && !m.halted()) {
    const StepInfo info = m.step();
    ++cycle;
    viol_trace_.push_back(info.mpu_viol);
    if (info.mem_read || info.mem_write) {
      accesses_.push_back({cycle - 1, info.mem_addr, info.mem_write,
                           info.mem_addr >= kDeviceBase, false});
    }
    if (info.dma_read) {
      // Record both halves of the attempted transfer (the MPU checks them
      // as a pair before any data moves).
      accesses_.push_back({cycle - 1, info.dma_addr_src, false, false, true});
      accesses_.push_back({cycle - 1, info.dma_addr_dst, true, false, true});
    }
    states_.push_back(map.pack(m.state()));
    if (cycle % checkpoint_interval == 0 && !m.halted()) {
      checkpoints_.push_back({cycle, m.state(), m.ram()});
    }
  }
  length_ = cycle;
  final_state_ = m.state();
  final_ram_ = m.ram();
}

const BitVector& GoldenRun::state_bits_at(std::uint64_t cycle) const {
  FAV_ENSURE_MSG(cycle <= length_, "cycle " << cycle << " beyond golden run");
  return states_[cycle];
}

ArchState GoldenRun::state_at(std::uint64_t cycle) const {
  return Machine::reg_map().unpack(state_bits_at(cycle));
}

std::uint16_t GoldenRun::pc_at(std::uint64_t cycle) const {
  const BitVector& bits = state_bits_at(cycle);
  std::uint16_t pc = 0;
  for (int b = 0; b < 16; ++b) {  // pc occupies flat bits 0..15
    if (bits.get(static_cast<std::size_t>(b))) {
      pc |= static_cast<std::uint16_t>(1u << b);
    }
  }
  return pc;
}

bool GoldenRun::viol_at(std::uint64_t cycle) const {
  FAV_ENSURE_MSG(cycle < length_, "cycle " << cycle << " beyond golden run");
  return viol_trace_.get(cycle);
}

std::optional<std::uint64_t> GoldenRun::first_violation_cycle() const {
  for (std::uint64_t c = 0; c < length_; ++c) {
    if (viol_trace_.get(c)) return c;
  }
  return std::nullopt;
}

const Checkpoint& GoldenRun::nearest_checkpoint(std::uint64_t cycle) const {
  // Checkpoints are recorded in ascending cycle order; binary-search the
  // last one at or before `cycle`. The first checkpoint is at cycle 0.
  const auto it = std::upper_bound(
      checkpoints_.begin(), checkpoints_.end(), cycle,
      [](std::uint64_t c, const Checkpoint& cp) { return c < cp.cycle; });
  return it == checkpoints_.begin() ? checkpoints_.front() : *std::prev(it);
}

std::uint64_t GoldenRun::restore_byte_size() const {
  const auto state_bytes = static_cast<std::uint64_t>(
      (Machine::reg_map().total_bits() + 7) / 8);
  const std::uint64_t ram_bytes = (1ull << 16) * sizeof(std::uint16_t);
  return state_bytes + ram_bytes;
}

Machine GoldenRun::restore(std::uint64_t cycle,
                           std::uint64_t* warmup_cycles) const {
  Machine m(*program_);
  restore_into(m, cycle, warmup_cycles);
  return m;
}

void GoldenRun::restore_into(Machine& m, std::uint64_t cycle,
                             std::uint64_t* warmup_cycles) const {
  FAV_ENSURE_MSG(cycle <= length_, "cycle " << cycle << " beyond golden run");
  FAV_ENSURE_MSG(&m.program() == program_,
                "machine was built for a different program");
  const Checkpoint& cp = nearest_checkpoint(cycle);
  m.set_state(cp.state);
  m.mutable_ram() = cp.ram;  // copy-assign reuses the machine's RAM buffer
  m.set_cycle(cp.cycle);
  const std::uint64_t warmup = cycle - cp.cycle;
  for (std::uint64_t i = 0; i < warmup; ++i) m.step();
  if (warmup_cycles != nullptr) *warmup_cycles = warmup;
}

}  // namespace fav::rtl
