#include "rtl/machine.h"

namespace fav::rtl {

Machine::Machine(const Program& program) : program_(&program) { reset(); }

void Machine::reset() {
  state_ = ArchState{};
  ram_ = Memory{};
  for (const auto& [addr, value] : program_->ram_init) {
    ram_.write(addr, value);
  }
  cycle_ = 0;
}

bool Machine::mpu_allows(const ArchState& state, std::uint16_t addr,
                         bool is_write) {
  if (addr >= kDeviceBase) return true;  // device page is never checked
  if (!state.mpu_enable) return true;
  const std::uint8_t need = is_write ? kPermWrite : kPermRead;
  for (const MpuRegion& r : state.mpu) {
    if ((r.perm & kPermEnable) == 0) continue;
    if (addr >= r.base && addr <= r.limit && (r.perm & need) != 0) return true;
  }
  return false;
}

bool Machine::mpu_allows_exec(const ArchState& state, std::uint16_t pc) {
  if (!state.mpu_enable || !state.instr_check) return true;
  for (const MpuRegion& r : state.mpu) {
    if ((r.perm & kPermEnable) == 0) continue;
    if (pc >= r.base && pc <= r.limit && (r.perm & kPermExec) != 0) {
      return true;
    }
  }
  return false;
}

std::uint16_t Machine::device_read(std::uint16_t addr) const {
  const std::uint16_t off = static_cast<std::uint16_t>(addr - kDeviceBase);
  if (off < kMpuRegionCount * kMpuRegionStride) {
    const auto& region = state_.mpu[off / kMpuRegionStride];
    switch (off % kMpuRegionStride) {
      case 0: return region.base;
      case 1: return region.limit;
      case 2: return region.perm;
      default: return 0;
    }
  }
  switch (addr) {
    case kDmaSrcAddr: return state_.dma_src;
    case kDmaDstAddr: return state_.dma_dst;
    case kDmaLenAddr: return state_.dma_len;
    case kDmaCtrlAddr: return state_.dma_active ? 1 : 0;
    case kMpuViolFlagAddr: return state_.viol_sticky ? 1 : 0;
    case kMpuViolAddrAddr: return state_.viol_addr;
    case kMpuEnableAddr:
      return static_cast<std::uint16_t>(
          (state_.mpu_enable ? kMpuCtrlEnable : 0) |
          (state_.instr_check ? kMpuCtrlInstrCheck : 0));
    default: return 0;
  }
}

void Machine::device_write(std::uint16_t addr, std::uint16_t value) {
  const std::uint16_t off = static_cast<std::uint16_t>(addr - kDeviceBase);
  if (off < kMpuRegionCount * kMpuRegionStride) {
    auto& region = state_.mpu[off / kMpuRegionStride];
    switch (off % kMpuRegionStride) {
      case 0: region.base = value; break;
      case 1: region.limit = value; break;
      case 2:
        region.perm = static_cast<std::uint8_t>(value & ((1 << kPermBits) - 1));
        break;
      default: break;  // reserved words ignore writes
    }
    return;
  }
  switch (addr) {
    // DMA registers: src/dst/len are write-locked while a transfer runs;
    // writing control bit 0 starts (if len > 0) or stops the engine.
    case kDmaSrcAddr:
      if (!state_.dma_active) state_.dma_src = value;
      break;
    case kDmaDstAddr:
      if (!state_.dma_active) state_.dma_dst = value;
      break;
    case kDmaLenAddr:
      if (!state_.dma_active) state_.dma_len = value;
      break;
    case kDmaCtrlAddr:
      // Start only; a running transfer ignores control writes (it ends on
      // completion or abort), keeping the engine's registers consistent.
      if (!state_.dma_active) {
        state_.dma_active = (value & 1) != 0 && state_.dma_len != 0;
      }
      break;
    case kMpuViolFlagAddr:
      state_.viol_sticky = false;  // any write clears the sticky flag
      break;
    case kMpuEnableAddr:
      state_.mpu_enable = (value & kMpuCtrlEnable) != 0;
      state_.instr_check = (value & kMpuCtrlInstrCheck) != 0;
      break;
    default:
      break;
  }
}

StepInfo Machine::step() {
  StepInfo info;
  ++cycle_;
  if (state_.halted) return info;

  // Fetch, then the instruction access check (paper Fig. 1): a denied
  // fetch executes as a NOP and raises the responding signal with the pc as
  // the violating address.
  const Instr fetched{program_->fetch(state_.pc)};
  info.instr = fetched;
  const bool fetch_ok = mpu_allows_exec(state_, state_.pc);
  const Instr instr = fetch_ok ? fetched : Instr{encode_nop()};
  if (!fetch_ok) {
    info.fetch_denied = true;
    info.mpu_viol = true;
  }

  // Everything below reads pre-state only; architectural writes are applied
  // at the end, exactly like the netlist's single clock edge.
  const ArchState pre = state_;
  std::uint16_t next_pc = static_cast<std::uint16_t>(pre.pc + 1);
  bool reg_write = false;
  int reg_write_idx = 0;
  std::uint16_t reg_write_val = 0;

  const std::uint16_t ra_val = pre.regs[static_cast<std::size_t>(instr.ra())];
  const std::uint16_t rb_val = pre.regs[static_cast<std::size_t>(instr.rb())];
  const std::uint16_t rd_val = pre.regs[static_cast<std::size_t>(instr.rd())];

  switch (instr.opcode()) {
    case Opcode::kAlu: {
      std::uint16_t y = 0;
      switch (instr.funct()) {
        case AluFunct::kAdd: y = static_cast<std::uint16_t>(ra_val + rb_val); break;
        case AluFunct::kSub: y = static_cast<std::uint16_t>(ra_val - rb_val); break;
        case AluFunct::kAnd: y = ra_val & rb_val; break;
        case AluFunct::kOr: y = ra_val | rb_val; break;
        case AluFunct::kXor: y = ra_val ^ rb_val; break;
        case AluFunct::kShl:
          y = static_cast<std::uint16_t>(ra_val << (rb_val & 0xF));
          break;
        case AluFunct::kShr:
          y = static_cast<std::uint16_t>(ra_val >> (rb_val & 0xF));
          break;
        case AluFunct::kMov: y = ra_val; break;
      }
      reg_write = true;
      reg_write_idx = instr.rd();
      reg_write_val = y;
      break;
    }
    case Opcode::kAddi:
      reg_write = true;
      reg_write_idx = instr.rd();
      reg_write_val = static_cast<std::uint16_t>(ra_val + instr.imm6());
      break;
    case Opcode::kLui:
      reg_write = true;
      reg_write_idx = instr.rd();
      reg_write_val = static_cast<std::uint16_t>(instr.imm8() << 8);
      break;
    case Opcode::kOri:
      reg_write = true;
      reg_write_idx = instr.rd();
      reg_write_val = rd_val | instr.imm8();
      break;
    case Opcode::kLw: {
      const auto addr = static_cast<std::uint16_t>(ra_val + instr.imm6());
      info.mem_read = true;
      info.mem_addr = addr;
      std::uint16_t value = 0;
      if (addr >= kDeviceBase) {
        value = device_read(addr);
      } else if (mpu_allows(pre, addr, /*is_write=*/false)) {
        value = ram_.read(addr);
      } else {
        info.mpu_viol = true;  // squashed load reads 0
      }
      info.mem_rdata = value;
      reg_write = true;
      reg_write_idx = instr.rd();
      reg_write_val = value;
      break;
    }
    case Opcode::kSw: {
      const auto addr = static_cast<std::uint16_t>(ra_val + instr.imm6());
      const std::uint16_t value = rd_val;  // [11:9] encodes the source
      info.mem_write = true;
      info.mem_addr = addr;
      info.mem_wdata = value;
      if (addr >= kDeviceBase) {
        device_write(addr, value);
      } else if (mpu_allows(pre, addr, /*is_write=*/true)) {
        ram_.write(addr, value);
        info.mem_write_done = true;
      } else {
        info.mpu_viol = true;
      }
      break;
    }
    case Opcode::kBeq:
      if (rd_val == ra_val) {
        next_pc = static_cast<std::uint16_t>(pre.pc + instr.imm6());
      }
      break;
    case Opcode::kBne:
      if (rd_val != ra_val) {
        next_pc = static_cast<std::uint16_t>(pre.pc + instr.imm6());
      }
      break;
    case Opcode::kJmp:
      next_pc = instr.imm12();
      break;
    case Opcode::kHalt:
      state_.halted = true;
      next_pc = pre.pc;
      break;
    case Opcode::kNop:
      break;
  }

  // --- DMA engine (peripheral bus master; same MPU data checks) ---------
  // The transfer condition uses the pre-state: a DMA started by this cycle's
  // control write begins moving data next cycle.
  const bool core_viol = info.mpu_viol;  // fetch or core data check denial
  if (pre.dma_active && pre.dma_len != 0) {
    info.dma_read = true;
    info.dma_addr_src = pre.dma_src;
    info.dma_addr_dst = pre.dma_dst;
    // The device page is off-limits to the DMA; everything else goes through
    // the MPU like a core access.
    const bool src_ok = pre.dma_src < kDeviceBase &&
                        mpu_allows(pre, pre.dma_src, /*is_write=*/false);
    const bool dst_ok = pre.dma_dst < kDeviceBase &&
                        mpu_allows(pre, pre.dma_dst, /*is_write=*/true);
    if (!src_ok || !dst_ok) {
      info.dma_viol = true;
      info.mpu_viol = true;  // the responding signal covers all three checks
      state_.dma_active = false;  // abort
    } else {
      ram_.write(pre.dma_dst, ram_.read(pre.dma_src));
      info.dma_write_done = true;
      state_.dma_src = static_cast<std::uint16_t>(pre.dma_src + 1);
      state_.dma_dst = static_cast<std::uint16_t>(pre.dma_dst + 1);
      state_.dma_len = static_cast<std::uint16_t>(pre.dma_len - 1);
      state_.dma_active = pre.dma_len > 1;
    }
  }

  // Violation bookkeeping (matches the netlist's viol_sticky/viol_addr DFFs).
  // Note device_write may already have *cleared* the sticky flag this cycle;
  // a new violation cannot co-occur with a CPU device write, so ordering is
  // safe. Priority for viol_addr: fetch, then core data, then DMA.
  if (info.mpu_viol) {
    if (!pre.viol_sticky) {
      if (info.fetch_denied) {
        state_.viol_addr = pre.pc;
      } else if (core_viol) {
        state_.viol_addr = info.mem_addr;
      } else {
        const bool src_bad = pre.dma_src >= kDeviceBase ||
                             !mpu_allows(pre, pre.dma_src, false);
        state_.viol_addr = src_bad ? pre.dma_src : pre.dma_dst;
      }
    }
    state_.viol_sticky = true;
  }

  if (reg_write) {
    state_.regs[static_cast<std::size_t>(reg_write_idx)] = reg_write_val;
  }
  state_.pc = next_pc;
  return info;
}

std::uint64_t Machine::run(std::uint64_t cycles) {
  std::uint64_t done = 0;
  while (done < cycles && !state_.halted) {
    step();
    ++done;
  }
  return done;
}

}  // namespace fav::rtl
