#include "rtl/isa.h"

#include <sstream>

namespace fav::rtl {

namespace {

const char* funct_name(AluFunct f) {
  switch (f) {
    case AluFunct::kAdd: return "add";
    case AluFunct::kSub: return "sub";
    case AluFunct::kAnd: return "and";
    case AluFunct::kOr: return "or";
    case AluFunct::kXor: return "xor";
    case AluFunct::kShl: return "shl";
    case AluFunct::kShr: return "shr";
    case AluFunct::kMov: return "mov";
  }
  return "?";
}

}  // namespace

std::string disassemble(Instr instr) {
  std::ostringstream os;
  switch (instr.opcode()) {
    case Opcode::kAlu:
      os << funct_name(instr.funct()) << " r" << instr.rd() << ", r"
         << instr.ra();
      if (instr.funct() != AluFunct::kMov) os << ", r" << instr.rb();
      break;
    case Opcode::kAddi:
      os << "addi r" << instr.rd() << ", r" << instr.ra() << ", "
         << instr.imm6();
      break;
    case Opcode::kLui:
      os << "lui r" << instr.rd() << ", " << static_cast<int>(instr.imm8());
      break;
    case Opcode::kOri:
      os << "ori r" << instr.rd() << ", " << static_cast<int>(instr.imm8());
      break;
    case Opcode::kLw:
      os << "lw r" << instr.rd() << ", r" << instr.ra() << ", " << instr.imm6();
      break;
    case Opcode::kSw:
      os << "sw r" << instr.rd() << ", r" << instr.ra() << ", " << instr.imm6();
      break;
    case Opcode::kBeq:
      os << "beq r" << instr.rd() << ", r" << instr.ra() << ", " << instr.imm6();
      break;
    case Opcode::kBne:
      os << "bne r" << instr.rd() << ", r" << instr.ra() << ", " << instr.imm6();
      break;
    case Opcode::kJmp:
      os << "jmp " << instr.imm12();
      break;
    case Opcode::kHalt:
      os << "halt";
      break;
    case Opcode::kNop:
      os << "nop";
      break;
  }
  return os.str();
}

}  // namespace fav::rtl
