// Two-pass assembler for MCU16 benchmark programs.
//
// Syntax (one statement per line, ';' or '#' starts a comment):
//   label:                       ; define label at current address
//   .data <addr> <value>         ; initial RAM word
//   add|sub|and|or|xor|shl|shr rd, ra, rb
//   mov  rd, ra
//   addi rd, ra, imm6            ; imm6 in [-32, 31]
//   lui  rd, imm8                ; rd = imm8 << 8
//   ori  rd, imm8                ; rd |= imm8
//   li   rd, imm16               ; pseudo: lui + ori (always two words)
//   lw   rd, ra, imm6
//   sw   rs, ra, imm6            ; mem[ra + imm6] = rs
//   beq|bne rA, rB, label|imm6   ; pc-relative
//   jmp  label|imm12             ; absolute
//   halt | nop
// Immediates accept decimal or 0x-prefixed hex.
#pragma once

#include <string>

#include "rtl/machine.h"

namespace fav::rtl {

/// Assembles source text into a Program. Throws fav::CheckError with the
/// offending line number on any syntax or range error.
Program assemble(const std::string& source);

}  // namespace fav::rtl
