#include "rtl/registers.h"

namespace fav::rtl {

RegisterMap::RegisterMap() {
  auto add = [this](std::string name, int width, bool config_like) {
    fields_.push_back({std::move(name), width, total_bits_, config_like});
    for (int b = 0; b < width; ++b) {
      bit_to_field_.push_back(static_cast<int>(fields_.size()) - 1);
    }
    total_bits_ += width;
  };

  add("pc", 16, false);
  for (int r = 0; r < 8; ++r) add("r" + std::to_string(r), 16, false);
  for (int k = 0; k < kMpuRegionCount; ++k) {
    const std::string p = "mpu" + std::to_string(k) + "_";
    add(p + "base", 16, true);
    add(p + "limit", 16, true);
    add(p + "perm", kPermBits, true);
  }
  add("mpu_enable", 1, true);
  add("instr_check", 1, true);
  add("viol_sticky", 1, true);
  add("viol_addr", 16, true);
  add("halted", 1, false);
  add("dma_src", 16, false);
  add("dma_dst", 16, false);
  add("dma_len", 16, false);
  add("dma_active", 1, false);
}

const RegisterMap& RegisterMap::mcu16() {
  static const RegisterMap map;
  return map;
}

const RegisterField& RegisterMap::field(int index) const {
  FAV_ENSURE_MSG(index >= 0 && index < static_cast<int>(fields_.size()),
                "field index " << index << " out of range");
  return fields_[static_cast<std::size_t>(index)];
}

int RegisterMap::field_index(const std::string& name) const {
  for (std::size_t i = 0; i < fields_.size(); ++i) {
    if (fields_[i].name == name) return static_cast<int>(i);
  }
  FAV_ENSURE_MSG(false, "no register field named '" << name << "'");
  return -1;
}

std::pair<int, int> RegisterMap::locate(int flat_bit) const {
  FAV_ENSURE_MSG(flat_bit >= 0 && flat_bit < total_bits_,
                "flat bit " << flat_bit << " out of range " << total_bits_);
  const int fi = bit_to_field_[static_cast<std::size_t>(flat_bit)];
  return {fi, flat_bit - fields_[static_cast<std::size_t>(fi)].offset};
}

std::uint32_t RegisterMap::get_field(const ArchState& s, int field_index) const {
  const RegisterField& f = field(field_index);
  // Field order must match the constructor: pc, r0..r7, 4x(base,limit,perm),
  // mpu_enable, viol_sticky, viol_addr, halted.
  int idx = field_index;
  if (idx == 0) return s.pc;
  --idx;
  if (idx < 8) return s.regs[static_cast<std::size_t>(idx)];
  idx -= 8;
  if (idx < 3 * kMpuRegionCount) {
    const auto& region = s.mpu[static_cast<std::size_t>(idx / 3)];
    switch (idx % 3) {
      case 0: return region.base;
      case 1: return region.limit;
      default: return region.perm;
    }
  }
  idx -= 3 * kMpuRegionCount;
  switch (idx) {
    case 0: return s.mpu_enable ? 1u : 0u;
    case 1: return s.instr_check ? 1u : 0u;
    case 2: return s.viol_sticky ? 1u : 0u;
    case 3: return s.viol_addr;
    case 4: return s.halted ? 1u : 0u;
    case 5: return s.dma_src;
    case 6: return s.dma_dst;
    case 7: return s.dma_len;
    case 8: return s.dma_active ? 1u : 0u;
  }
  FAV_ENSURE_MSG(false, "unhandled field '" << f.name << "'");
  return 0;
}

void RegisterMap::set_field(ArchState& s, int field_index,
                            std::uint32_t value) const {
  const RegisterField& f = field(field_index);
  const std::uint32_t mask =
      f.width >= 32 ? ~0u : ((1u << f.width) - 1u);
  value &= mask;
  int idx = field_index;
  if (idx == 0) {
    s.pc = static_cast<std::uint16_t>(value);
    return;
  }
  --idx;
  if (idx < 8) {
    s.regs[static_cast<std::size_t>(idx)] = static_cast<std::uint16_t>(value);
    return;
  }
  idx -= 8;
  if (idx < 3 * kMpuRegionCount) {
    auto& region = s.mpu[static_cast<std::size_t>(idx / 3)];
    switch (idx % 3) {
      case 0: region.base = static_cast<std::uint16_t>(value); return;
      case 1: region.limit = static_cast<std::uint16_t>(value); return;
      default: region.perm = static_cast<std::uint8_t>(value); return;
    }
  }
  idx -= 3 * kMpuRegionCount;
  switch (idx) {
    case 0: s.mpu_enable = value != 0; return;
    case 1: s.instr_check = value != 0; return;
    case 2: s.viol_sticky = value != 0; return;
    case 3: s.viol_addr = static_cast<std::uint16_t>(value); return;
    case 4: s.halted = value != 0; return;
    case 5: s.dma_src = static_cast<std::uint16_t>(value); return;
    case 6: s.dma_dst = static_cast<std::uint16_t>(value); return;
    case 7: s.dma_len = static_cast<std::uint16_t>(value); return;
    case 8: s.dma_active = value != 0; return;
  }
  FAV_ENSURE_MSG(false, "unhandled field '" << f.name << "'");
}

bool RegisterMap::get_bit(const ArchState& s, int flat_bit) const {
  const auto [fi, bit] = locate(flat_bit);
  return (get_field(s, fi) >> bit) & 1u;
}

void RegisterMap::set_bit(ArchState& s, int flat_bit, bool value) const {
  const auto [fi, bit] = locate(flat_bit);
  std::uint32_t v = get_field(s, fi);
  if (value) {
    v |= 1u << bit;
  } else {
    v &= ~(1u << bit);
  }
  set_field(s, fi, v);
}

void RegisterMap::flip_bit(ArchState& s, int flat_bit) const {
  set_bit(s, flat_bit, !get_bit(s, flat_bit));
}

BitVector RegisterMap::pack(const ArchState& s) const {
  BitVector bits(static_cast<std::size_t>(total_bits_));
  for (std::size_t fi = 0; fi < fields_.size(); ++fi) {
    const std::uint32_t v = get_field(s, static_cast<int>(fi));
    for (int b = 0; b < fields_[fi].width; ++b) {
      if ((v >> b) & 1u) {
        bits.set(static_cast<std::size_t>(fields_[fi].offset + b), true);
      }
    }
  }
  return bits;
}

ArchState RegisterMap::unpack(const BitVector& bits) const {
  FAV_ENSURE_MSG(bits.size() == static_cast<std::size_t>(total_bits_),
                "bit vector size mismatch");
  ArchState s;
  for (std::size_t fi = 0; fi < fields_.size(); ++fi) {
    std::uint32_t v = 0;
    for (int b = 0; b < fields_[fi].width; ++b) {
      if (bits.get(static_cast<std::size_t>(fields_[fi].offset + b))) {
        v |= 1u << b;
      }
    }
    set_field(s, static_cast<int>(fi), v);
  }
  return s;
}

}  // namespace fav::rtl
