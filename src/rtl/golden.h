// Golden run with checkpointing (paper Section 5.1).
//
// Runs the benchmark once fault-free at RTL level, dumping:
//  * full checkpoints (architectural state + RAM) every `checkpoint_interval`
//    cycles, so fault-attack runs can restart near the injection cycle,
//  * the packed register state at every cycle boundary (needed for golden
//    comparison and for error-lifetime characterization),
//  * the responding-signal (MPU violation) trace, which locates the target
//    cycle Tt of the benchmark's illegal access.
#pragma once

#include <cstdint>
#include <optional>
#include <vector>

#include "rtl/machine.h"
#include "util/bitvector.h"

namespace fav::rtl {

struct Checkpoint {
  std::uint64_t cycle = 0;
  ArchState state;
  Memory ram;
};

/// One data-memory access observed during the golden run. The analytical
/// evaluator replays this trace against a corrupted MPU configuration to
/// decide an attack outcome without RTL re-simulation.
struct AccessRecord {
  std::uint64_t cycle = 0;
  std::uint16_t addr = 0;
  bool is_write = false;
  bool is_device = false;  // device-page access (MPU config / status)
  bool is_dma = false;     // issued by the DMA engine (device page denied)
};

class GoldenRun {
 public:
  /// Runs `program` for up to `max_cycles` (stops after halt). The golden
  /// run keeps a reference to `program`; it must outlive this object.
  GoldenRun(const Program& program, std::uint64_t max_cycles,
            std::uint64_t checkpoint_interval = 32);
  /// GoldenRun keeps a reference to the program: temporaries would dangle.
  GoldenRun(Program&&, std::uint64_t, std::uint64_t = 32) = delete;

  const Program& program() const { return *program_; }

  /// Number of cycles executed (including the halting cycle).
  std::uint64_t length() const { return length_; }

  /// Packed architectural state at the *beginning* of cycle `cycle`
  /// (cycle 0 = reset state; cycle length() = final state).
  const BitVector& state_bits_at(std::uint64_t cycle) const;
  ArchState state_at(std::uint64_t cycle) const;

  /// Responding-signal value during cycle `cycle` (0 <= cycle < length()).
  bool viol_at(std::uint64_t cycle) const;

  /// PC at the beginning of `cycle` — the address fetched during that cycle
  /// (cheap read from the packed state; used for instruction-check replay).
  std::uint16_t pc_at(std::uint64_t cycle) const;
  /// First cycle whose MPU violation wire fired, if any.
  std::optional<std::uint64_t> first_violation_cycle() const;

  const ArchState& final_state() const { return final_state_; }
  const Memory& final_ram() const { return final_ram_; }

  /// All data-memory accesses of the fault-free run, in cycle order.
  const std::vector<AccessRecord>& accesses() const { return accesses_; }

  /// Latest checkpoint at or before `cycle`.
  const Checkpoint& nearest_checkpoint(std::uint64_t cycle) const;
  const std::vector<Checkpoint>& checkpoints() const { return checkpoints_; }

  /// Returns a Machine positioned at the beginning of `cycle`, restored from
  /// the nearest checkpoint and warmed up by RTL simulation (Fig. 5 step 3).
  /// `warmup_cycles`, if non-null, receives the number of simulated cycles.
  Machine restore(std::uint64_t cycle,
                  std::uint64_t* warmup_cycles = nullptr) const;

  /// Same as restore(), but repositions an existing machine built for this
  /// golden run's program. Reusing one machine across many restores avoids a
  /// 64K-word RAM allocation per call — the Monte Carlo engine keeps one
  /// machine per worker and restores it for every sample; the word-parallel
  /// batch path (DESIGN.md §6i) goes further and shares one restore across
  /// up to 64 samples that strike the same injection cycle, copying the
  /// restored machine only for the lanes whose flip set is non-empty.
  void restore_into(Machine& machine, std::uint64_t cycle,
                    std::uint64_t* warmup_cycles = nullptr) const;

  /// Bytes copy-assigned by one checkpoint restore (packed architectural
  /// state + the 64K-word RAM image). Constant per design; the Monte Carlo
  /// engine multiplies it by the restore count for the "rtl.restore_bytes"
  /// byte-traffic metric.
  std::uint64_t restore_byte_size() const;

 private:
  const Program* program_;
  std::uint64_t length_ = 0;
  std::vector<BitVector> states_;  // length()+1 entries
  BitVector viol_trace_;           // length() entries
  std::vector<Checkpoint> checkpoints_;
  std::vector<AccessRecord> accesses_;
  ArchState final_state_;
  Memory final_ram_;
};

}  // namespace fav::rtl
