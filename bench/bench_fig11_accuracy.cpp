// Reproduces paper Fig. 11: impact of the attack technique's temporal
// accuracy and parameter (spatial) variation on the overall SSF, for both
// the illegal-memory-write and illegal-memory-read benchmarks.
//   (a) normalized SSF vs the range of the timing distribution (1 -> 100
//       cycles): tighter timing -> higher SSF,
//   (b) normalized SSF vs spatial accuracy, from a uniform spread over the
//       whole chip to a delta aimed at the most vulnerable cells
//       (paper: up to ~80x increase).
#include <algorithm>

#include "bench_util.h"

using namespace fav;

namespace {

double evaluate_ssf(core::FaultAttackEvaluator& fw,
                    const faultsim::AttackModel& attack, std::size_t n,
                    std::uint64_t seed) {
  auto sampler = fw.make_importance_sampler(attack);
  Rng rng(seed);
  return fw.evaluator().run(*sampler, rng, n).ssf();
}

}  // namespace

int main() {
  bench::banner("Fig. 11 — temporal accuracy & parameter variation vs SSF");

  core::FaultAttackEvaluator write_fw(soc::make_illegal_write_benchmark());
  core::FaultAttackEvaluator read_fw(soc::make_illegal_read_benchmark());

  // ---- (a) temporal accuracy ------------------------------------------
  // The attacker intends to strike shortly before Tt; the technique's
  // temporal accuracy widens the realized timing window t in [1, range].
  const std::vector<int> ranges = {1, 2, 5, 10, 20, 50, 100};
  bench::section("(a) normalized SSF vs range of temporal accuracy");
  std::printf("%-8s %14s %14s\n", "range", "memory write", "memory read");
  std::vector<double> w_ssf, r_ssf;
  for (const int range : ranges) {
    auto make = [&](core::FaultAttackEvaluator& fw) {
      faultsim::AttackModel a = fw.subblock_attack_model(1.5, 2);
      a.t_min = 1;
      a.t_max = range;
      return evaluate_ssf(fw, a, 3000, 100 + static_cast<std::uint64_t>(range));
    };
    w_ssf.push_back(make(write_fw));
    r_ssf.push_back(make(read_fw));
  }
  // Normalize to the widest range (the paper normalizes mid-scale; only the
  // trend matters).
  for (std::size_t i = 0; i < ranges.size(); ++i) {
    std::printf("%-8d %14.3f %14.3f\n", ranges[i], w_ssf[i] / w_ssf.back(),
                r_ssf[i] / r_ssf.back());
  }
  std::printf("(paper Fig. 11a: SSF decreases as the range grows)\n");

  // ---- (b) spatial accuracy -------------------------------------------
  bench::section("(b) normalized SSF vs spatial accuracy");
  struct Spread {
    const char* name;
    double keep_fraction;  // of candidates, sorted by memory score
  };
  const std::vector<Spread> spreads = {
      {"uniform (whole chip)", 1.0},
      {"security sub-block", 0.25},
      {"near config registers", 0.05},
      {"delta (target cells)", 0.0},  // top-scoring cells only
  };
  std::printf("%-24s %14s %14s\n", "spatial spread", "memory write",
              "memory read");
  std::vector<double> w_sp, r_sp;
  for (const Spread& sp : spreads) {
    auto eval_spread = [&](core::FaultAttackEvaluator& fw,
                           std::uint64_t seed) {
      faultsim::AttackModel a = fw.chip_attack_model(1.5, 50);
      a.t_min = 1;
      // Rank candidates by how many potent memory-type cells their spot
      // covers (what a well-informed attacker would aim for).
      const auto model = fw.make_sampling_model(a);
      std::vector<netlist::NodeId> ranked = a.candidate_centers;
      std::stable_sort(ranked.begin(), ranked.end(),
                       [&](netlist::NodeId x, netlist::NodeId y) {
                         return model.memory_score(x) > model.memory_score(y);
                       });
      std::size_t keep = sp.keep_fraction > 0
                             ? static_cast<std::size_t>(
                                   sp.keep_fraction *
                                   static_cast<double>(ranked.size()))
                             : 8;  // delta: the attacker's exact aim point(s)
      keep = std::max<std::size_t>(keep, 8);
      a.candidate_centers.assign(ranked.begin(),
                                 ranked.begin() + static_cast<long>(keep));
      return evaluate_ssf(fw, a, 3000, seed);
    };
    w_sp.push_back(eval_spread(write_fw, 500 + w_sp.size()));
    r_sp.push_back(eval_spread(read_fw, 600 + r_sp.size()));
  }
  for (std::size_t i = 0; i < spreads.size(); ++i) {
    std::printf("%-24s %14.1f %14.1f\n", spreads[i].name,
                w_sp[i] / w_sp.front(), r_sp[i] / r_sp.front());
  }
  std::printf(
      "(paper Fig. 11b: from uniform to delta the normalized SSF rises by\n"
      "orders of magnitude — capturing technique uncertainty matters)\n");
  return 0;
}
