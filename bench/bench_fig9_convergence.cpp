// Reproduces paper Fig. 9: convergence of the three sampling strategies —
// random (plain f_{T,P}), fanin-cone restricted, and the full
// pre-characterization-driven importance sampling with analytical handling
// of memory-type registers ("our" mixed strategy).
//
// Paper numbers: sample variance 0.0261 (random) / 0.0210 (fanin cone) /
// 9.70e-5 (importance) => >2500x variance reduction. Absolute values differ
// on our substrate; the shape to match is the ordering and the
// orders-of-magnitude gap between the importance strategy and the rest.
#include "bench_util.h"

using namespace fav;

int main() {
  bench::banner("Fig. 9 — convergence of sampling strategies");

  core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  const auto attack = fw.subblock_attack_model(1.5, 50);
  constexpr std::size_t kSamples = 30000;

  auto random = fw.make_random_sampler(attack);
  auto cone = fw.make_cone_sampler(attack);
  auto importance = fw.make_importance_sampler(attack);

  struct Row {
    const char* name;
    mc::SsfResult result;
  };
  std::vector<Row> rows;
  for (auto* sampler : {random.get(), cone.get(), importance.get()}) {
    Rng rng(20170618);  // same seed for every strategy
    rows.push_back({sampler->name().c_str(),
                    fw.evaluator().run(*sampler, rng, kSamples)});
  }

  bench::section("(a) convergence traces (running SSF estimate)");
  std::printf("%-8s %14s %14s %14s\n", "samples", rows[0].name, rows[1].name,
              rows[2].name);
  const std::size_t points = rows[0].result.trace.size();
  for (std::size_t i = 29; i < points; i += 30) {
    std::printf("%-8zu %14.5f %14.5f %14.5f\n",
                (i + 1) * 50,  // trace_stride default
                rows[0].result.trace[i], rows[1].result.trace[i],
                rows[2].result.trace[i]);
  }

  bench::section("(b) detailed statistics");
  std::printf("%-12s %8s %10s %14s %10s\n", "strategy", "succ", "SSF",
              "variance", "speedup");
  const double var_random = rows[0].result.sample_variance();
  for (const Row& row : rows) {
    const double var = row.result.sample_variance();
    std::printf("%-12s %8zu %10.5f %14.3e %9.0fx\n", row.name,
                row.result.successes, row.result.ssf(), var,
                var > 0 ? var_random / var : 0.0);
  }
  std::printf(
      "\npaper: random 0.0261 / fanin-cone 0.0210 / importance 9.70e-5\n"
      "(~2500x convergence-rate gain); expect the same strategy ordering\n"
      "with a one-to-two order-of-magnitude variance gap here.\n");

  bench::section("outcome-path mix per strategy");
  std::printf("%-12s %10s %12s %10s\n", "strategy", "masked", "analytical",
              "rtl");
  for (const Row& row : rows) {
    std::printf("%-12s %10zu %12zu %10zu\n", row.name, row.result.masked,
                row.result.analytical, row.result.rtl);
  }
  return 0;
}
