// Micro-performance benchmarks (google-benchmark) for the framework's hot
// paths: RTL stepping, gate-level evaluation, transient injection, checkpoint
// restore, and one full Monte Carlo sample. These quantify why the paper's
// cross-level split (cheap RTL everywhere, gate level only for the injection
// cycle) pays off.
#include <benchmark/benchmark.h>
#include <unistd.h>

#include <filesystem>
#include <string>

#include "core/framework.h"
#include "soc/benchmark.h"

using namespace fav;

namespace {

struct Fixture {
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
};

Fixture& fx() {
  static Fixture f;
  return f;
}

void BM_RtlStep(benchmark::State& state) {
  rtl::Machine m(fx().bench.program);
  for (auto _ : state) {
    if (m.halted()) m.reset();
    benchmark::DoNotOptimize(m.step());
  }
}
BENCHMARK(BM_RtlStep);

void BM_GateLevelCycle(benchmark::State& state) {
  soc::GateLevelMachine gate(fx().soc, fx().bench.program);
  for (auto _ : state) {
    if (gate.halted()) gate.reset();
    benchmark::DoNotOptimize(gate.step());
  }
}
BENCHMARK(BM_GateLevelCycle);

void BM_CheckpointRestore(benchmark::State& state) {
  const auto cycle = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx().golden.restore(cycle));
  }
}
BENCHMARK(BM_CheckpointRestore)->Arg(33)->Arg(63);

void BM_TransientInjection(benchmark::State& state) {
  rtl::Machine m = fx().golden.restore(80);
  soc::GateLevelMachine gate(fx().soc, fx().bench.program);
  gate.load_state(m.state());
  gate.mutable_ram() = m.ram();
  gate.settle_inputs();
  const auto struck = fx().placement.nodes_within(
      fx().placement.placed_nodes()[state.range(0) % 3000], 1.5);
  const double strike = 0.8 * fx().injector.timing().clock_period();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx().injector.inject(gate.sim(), struck, strike));
  }
}
BENCHMARK(BM_TransientInjection)->Arg(100)->Arg(2000);

// Bit-parallel injection: one inject_batch sweep computes Arg lane flip sets
// at once. items_per_second counts lanes, so comparing this row's rate with
// BM_TransientInjection's inverse time isolates the word-parallel win on the
// injection sweep alone (shared restore/settle amortization comes on top —
// see BM_MonteCarloRunBatchLanes for the end-to-end split).
void BM_InjectBatch(benchmark::State& state) {
  rtl::Machine m = fx().golden.restore(80);
  soc::GateLevelMachine gate(fx().soc, fx().bench.program);
  gate.load_state(m.state());
  gate.mutable_ram() = m.ram();
  gate.settle_inputs();
  netlist::WordSimulator words(fx().soc.netlist());
  gate.broadcast_settled(words);
  const auto lanes = static_cast<std::size_t>(state.range(0));
  const auto& centers = fx().placement.placed_nodes();
  std::vector<std::vector<netlist::NodeId>> struck(lanes);
  std::vector<double> strike(lanes);
  for (std::size_t l = 0; l < lanes; ++l) {
    struck[l] = fx().placement.nodes_within(
        centers[(137 * l) % centers.size()], 1.5);
    strike[l] = (0.1 + 0.8 * static_cast<double>(l) /
                           static_cast<double>(lanes)) *
                fx().injector.timing().clock_period();
  }
  faultsim::BatchInjectionScratch scratch;
  std::vector<std::vector<netlist::NodeId>> flipped;
  for (auto _ : state) {
    fx().injector.inject_batch(words, struck, strike, scratch, flipped);
    benchmark::DoNotOptimize(flipped);
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(lanes));
}
BENCHMARK(BM_InjectBatch)->Arg(8)->Arg(64);

void BM_FullMonteCarloSample(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  static const faultsim::AttackModel attack = fw.subblock_attack_model(1.5, 50);
  static auto sampler = fw.make_importance_sampler(attack);
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fw.evaluator().evaluate_sample(sampler->draw(rng)));
  }
}
BENCHMARK(BM_FullMonteCarloSample);

// Per-sample evaluation with per-thread scratch reuse (no construction of a
// fresh RTL + gate-level machine per sample). The delta against
// BM_FullMonteCarloSample is what scratch reuse alone buys.
void BM_FullMonteCarloSampleScratchReuse(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  static const faultsim::AttackModel attack = fw.subblock_attack_model(1.5, 50);
  static auto sampler = fw.make_importance_sampler(attack);
  Rng rng(42);
  mc::EvalScratch scratch(fw.evaluator());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fw.evaluator().evaluate_sample(sampler->draw(rng), scratch));
  }
}
BENCHMARK(BM_FullMonteCarloSampleScratchReuse);

// Full-batch sample throughput of the parallel engine at explicit thread
// counts (Arg = EvaluatorConfig::threads). items_per_second is the metric to
// compare: the Arg(4) row over the Arg(1) row is the engine's speedup, and
// Arg(1) matches the sequential seed path (same scratch-reuse inner loop).
void BM_MonteCarloRunThreads(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  static const faultsim::AttackModel attack = fw.subblock_attack_model(1.5, 50);
  static auto sampler = fw.make_importance_sampler(attack);
  mc::EvaluatorConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.keep_records = false;
  const mc::SsfEvaluator engine(fw.soc(), fw.placement(), fw.injector(),
                                fw.benchmark(), fw.golden(),
                                &fw.characterization(), cfg);
  constexpr std::size_t kSamples = 512;
  for (auto _ : state) {
    Rng rng(42);  // same pre-drawn batch every iteration and thread count
    benchmark::DoNotOptimize(engine.run(*sampler, rng, kSamples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSamples));
}
BENCHMARK(BM_MonteCarloRunThreads)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Scalar vs word-parallel campaign split (Arg = EvaluatorConfig::batch_lanes,
// threads fixed at 1). Arg(1) is the pre-batching scalar engine, Arg(64) the
// full PPSFP path sharing one restore + settle + bit-parallel sweep per
// injection-cycle group; the items_per_second ratio between the two rows is
// the tentpole speedup tracked in BENCH_pr6.json. Results are bitwise
// identical across rows — only the schedule changes.
void BM_MonteCarloRunBatchLanes(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  static const faultsim::AttackModel attack = fw.subblock_attack_model(1.5, 50);
  static auto sampler = fw.make_importance_sampler(attack);
  mc::EvaluatorConfig cfg;
  cfg.threads = 1;
  cfg.batch_lanes = static_cast<std::size_t>(state.range(0));
  cfg.keep_records = false;
  const mc::SsfEvaluator engine(fw.soc(), fw.placement(), fw.injector(),
                                fw.benchmark(), fw.golden(),
                                &fw.characterization(), cfg);
  constexpr std::size_t kSamples = 512;
  for (auto _ : state) {
    Rng rng(42);  // same pre-drawn batch every iteration and lane count
    benchmark::DoNotOptimize(engine.run(*sampler, rng, kSamples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSamples));
}
BENCHMARK(BM_MonteCarloRunBatchLanes)
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Instrumented campaign: samples/s with the metrics sink attached plus the
// observability layer's own answer to "where does the time go" — the
// checkpoint-restore / gate-injection / RTL-resume split is exported as
// per-sample counters so BENCH_pr3.json snapshots track phase drift, not
// just aggregate throughput. Also measures the overhead of metrics
// collection itself: compare against the same Arg row of
// BM_MonteCarloRunThreads (identical engine config, sink detached).
void BM_MonteCarloRunInstrumented(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  static const faultsim::AttackModel attack = fw.subblock_attack_model(1.5, 50);
  static auto sampler = fw.make_importance_sampler(attack);
  MetricsSink metrics;
  mc::EvaluatorConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.keep_records = false;
  cfg.metrics = &metrics;
  const mc::SsfEvaluator engine(fw.soc(), fw.placement(), fw.injector(),
                                fw.benchmark(), fw.golden(),
                                &fw.characterization(), cfg);
  constexpr std::size_t kSamples = 512;
  for (auto _ : state) {
    Rng rng(42);
    benchmark::DoNotOptimize(engine.run(*sampler, rng, kSamples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSamples));
  const auto per_sample_ns = [&](const char* name) {
    const TimerStat* t = metrics.timer(name);
    const double total = static_cast<double>(state.iterations()) * kSamples;
    return t != nullptr ? static_cast<double>(t->total_ns) / total : 0.0;
  };
  state.counters["restore_ns_per_sample"] = per_sample_ns("eval.restore_ns");
  state.counters["gate_inject_ns_per_sample"] =
      per_sample_ns("eval.gate_inject_ns");
  state.counters["rtl_resume_ns_per_sample"] =
      per_sample_ns("eval.rtl_resume_ns");
  state.counters["analytical_ns_per_sample"] =
      per_sample_ns("eval.analytical_ns");
  state.counters["rtl_path_fraction"] =
      static_cast<double>(metrics.counter("eval.path.rtl")) /
      static_cast<double>(metrics.counter("eval.samples"));
}
BENCHMARK(BM_MonteCarloRunInstrumented)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// One clock-glitch sample through the unified engine with scratch reuse.
// Before the technique-generic pipeline, every glitch attack built a fresh
// RTL + gate-level machine pair; the delta against BM_ClockGlitchSampleFresh
// is what routing glitch evaluation through the shared scratch path buys.
void BM_ClockGlitchSample(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark(), [] {
    core::FrameworkConfig cfg;
    cfg.technique = "clock-glitch";
    return cfg;
  }());
  static const faultsim::ClockGlitchAttackModel model =
      fw.glitch_attack_model(50);
  static auto sampler = fw.make_glitch_sampler(model);
  Rng rng(42);
  mc::EvalScratch scratch(fw.evaluator());
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fw.evaluator().evaluate_sample(sampler->draw(rng), scratch));
  }
}
BENCHMARK(BM_ClockGlitchSample);

// The same sample stream on fresh machines per attack — the pre-unification
// cost model of the standalone glitch evaluator.
void BM_ClockGlitchSampleFresh(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark(), [] {
    core::FrameworkConfig cfg;
    cfg.technique = "clock-glitch";
    return cfg;
  }());
  static const faultsim::ClockGlitchAttackModel model =
      fw.glitch_attack_model(50);
  static auto sampler = fw.make_glitch_sampler(model);
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fw.evaluator().evaluate_sample(sampler->draw(rng)));
  }
}
BENCHMARK(BM_ClockGlitchSampleFresh);

// Glitch campaign throughput on the shared parallel engine (Arg = threads):
// the capability the standalone glitch evaluator never had. Compare
// items_per_second across Arg rows for the glitch path's scaling.
void BM_ClockGlitchRun(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark(), [] {
    core::FrameworkConfig cfg;
    cfg.technique = "clock-glitch";
    return cfg;
  }());
  static const faultsim::ClockGlitchAttackModel model =
      fw.glitch_attack_model(50);
  static auto sampler = fw.make_glitch_sampler(model);
  mc::EvaluatorConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.keep_records = false;
  faultsim::ClockGlitchTechnique technique(fw.glitch_simulator());
  const mc::SsfEvaluator engine(fw.soc(), technique, fw.benchmark(),
                                fw.golden(), &fw.characterization(), cfg);
  constexpr std::size_t kSamples = 512;
  for (auto _ : state) {
    Rng rng(42);  // same pre-drawn batch every iteration and thread count
    benchmark::DoNotOptimize(engine.run(*sampler, rng, kSamples));
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(kSamples));
}
BENCHMARK(BM_ClockGlitchRun)
    ->Arg(1)
    ->Arg(2)
    ->Arg(4)
    ->Arg(8)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// Exhaustive sweep of the bound clock-glitch fault space (Arg = threads):
// the full (t, depth) grid streamed through run_exhaustive in enumeration
// order, no sampler and no RNG. items_per_second here against the same Arg
// row of BM_MonteCarloRunThreads is the cost ratio of an exact answer vs a
// Monte Carlo estimate on this benchmark — the trade BENCH_pr9.json tracks.
void BM_ExhaustiveSweep(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark(), [] {
    core::FrameworkConfig cfg;
    cfg.technique = "clock-glitch";
    return cfg;
  }());
  static const faultsim::ClockGlitchAttackModel model =
      fw.glitch_attack_model(50);
  mc::EvaluatorConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  cfg.keep_records = false;
  faultsim::ClockGlitchTechnique technique(fw.glitch_simulator());
  technique.bind_space(model);
  const std::uint64_t space = technique.space_size();
  const mc::SsfEvaluator engine(fw.soc(), technique, fw.benchmark(),
                                fw.golden(), &fw.characterization(), cfg);
  for (auto _ : state) {
    benchmark::DoNotOptimize(engine.run_exhaustive());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(space));
  state.counters["fault_space_size"] = static_cast<double>(space);
}
BENCHMARK(BM_ExhaustiveSweep)
    ->Arg(1)
    ->Arg(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

void BM_SignatureRecording(benchmark::State& state) {
  const rtl::Program workload = soc::make_synthetic_workload();
  for (auto _ : state) {
    precharac::SignatureTrace trace(fx().soc, workload, 100);
    benchmark::DoNotOptimize(trace.cycles());
  }
}
BENCHMARK(BM_SignatureRecording);

// Full framework elaboration, cold vs warm, through the persistent
// pre-characterization artifact cache (precharac/artifact.h). Arg(0) removes
// the artifact before every construction so each iteration recomputes and
// rewrites it; Arg(1) seeds the artifact once and measures the warm load.
// The warm/cold ratio is the cache's whole value proposition.
void BM_PrecharacColdVsWarm(benchmark::State& state) {
  namespace fs = std::filesystem;
  const fs::path dir = fs::temp_directory_path() /
                       ("fav_bench_precharac_" + std::to_string(::getpid()));
  fs::create_directories(dir);
  core::FrameworkConfig cfg;
  cfg.precharac_cache_path = (dir / "bundle.fpa").string();
  cfg.log = [](const std::string&) {};
  const bool warm = state.range(0) == 1;
  if (warm) {
    // Seed the artifact so every timed construction hits.
    core::FaultAttackEvaluator seed(soc::make_illegal_write_benchmark(), cfg);
  }
  for (auto _ : state) {
    if (!warm) {
      state.PauseTiming();
      fs::remove(cfg.precharac_cache_path);
      state.ResumeTiming();
    }
    core::FaultAttackEvaluator f(soc::make_illegal_write_benchmark(), cfg);
    benchmark::DoNotOptimize(f.precharac_cache().outcome.data());
  }
  state.SetLabel(warm ? "warm" : "cold");
  std::error_code ec;
  fs::remove_all(dir, ec);
}
BENCHMARK(BM_PrecharacColdVsWarm)
    ->Arg(0)
    ->Arg(1)
    ->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
