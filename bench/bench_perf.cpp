// Micro-performance benchmarks (google-benchmark) for the framework's hot
// paths: RTL stepping, gate-level evaluation, transient injection, checkpoint
// restore, and one full Monte Carlo sample. These quantify why the paper's
// cross-level split (cheap RTL everywhere, gate level only for the injection
// cycle) pays off.
#include <benchmark/benchmark.h>

#include "core/framework.h"
#include "soc/benchmark.h"

using namespace fav;

namespace {

struct Fixture {
  soc::SecurityBenchmark bench = soc::make_illegal_write_benchmark();
  soc::SocNetlist soc;
  layout::Placement placement{soc.netlist()};
  faultsim::InjectionSimulator injector{soc.netlist()};
  rtl::GoldenRun golden{bench.program, bench.max_cycles, 32};
};

Fixture& fx() {
  static Fixture f;
  return f;
}

void BM_RtlStep(benchmark::State& state) {
  rtl::Machine m(fx().bench.program);
  for (auto _ : state) {
    if (m.halted()) m.reset();
    benchmark::DoNotOptimize(m.step());
  }
}
BENCHMARK(BM_RtlStep);

void BM_GateLevelCycle(benchmark::State& state) {
  soc::GateLevelMachine gate(fx().soc, fx().bench.program);
  for (auto _ : state) {
    if (gate.halted()) gate.reset();
    benchmark::DoNotOptimize(gate.step());
  }
}
BENCHMARK(BM_GateLevelCycle);

void BM_CheckpointRestore(benchmark::State& state) {
  const auto cycle = static_cast<std::uint64_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx().golden.restore(cycle));
  }
}
BENCHMARK(BM_CheckpointRestore)->Arg(33)->Arg(63);

void BM_TransientInjection(benchmark::State& state) {
  rtl::Machine m = fx().golden.restore(80);
  soc::GateLevelMachine gate(fx().soc, fx().bench.program);
  gate.load_state(m.state());
  gate.mutable_ram() = m.ram();
  gate.settle_inputs();
  const auto struck = fx().placement.nodes_within(
      fx().placement.placed_nodes()[state.range(0) % 3000], 1.5);
  const double strike = 0.8 * fx().injector.timing().clock_period();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx().injector.inject(gate.sim(), struck, strike));
  }
}
BENCHMARK(BM_TransientInjection)->Arg(100)->Arg(2000);

void BM_FullMonteCarloSample(benchmark::State& state) {
  static core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  static const faultsim::AttackModel attack = fw.subblock_attack_model(1.5, 50);
  static auto sampler = fw.make_importance_sampler(attack);
  Rng rng(42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fw.evaluator().evaluate_sample(sampler->draw(rng)));
  }
}
BENCHMARK(BM_FullMonteCarloSample);

void BM_SignatureRecording(benchmark::State& state) {
  const rtl::Program workload = soc::make_synthetic_workload();
  for (auto _ : state) {
    precharac::SignatureTrace trace(fx().soc, workload, 100);
    benchmark::DoNotOptimize(trace.cycles());
  }
}
BENCHMARK(BM_SignatureRecording);

}  // namespace

BENCHMARK_MAIN();
