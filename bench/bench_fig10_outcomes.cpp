// Reproduces paper Fig. 10: combinational-gate vs register attacks.
//   (a) outcome mix for attacks on combinational gates: masked / errors
//       confined to memory-type registers (analytical only) / errors needing
//       RTL resumption (paper: 68.3% / 28.6% / 3.1%),
//   (b) SSF induced by attacks on registers vs combinational gates
//       (paper: 271 vs 70 successful attacks of 2000; SSF 0.027 vs 0.007 —
//       comb-gate SSF ~25.8% of register SSF).
#include "bench_util.h"

using namespace fav;

int main() {
  bench::banner("Fig. 10 — attacks on combinational gates vs registers");

  core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  const auto base = fw.subblock_attack_model(1.5, 50);

  faultsim::AttackModel comb_attack = base;
  comb_attack.candidate_centers =
      bench::gates_only(fw.soc(), base.candidate_centers);
  faultsim::AttackModel reg_attack = base;
  reg_attack.candidate_centers =
      bench::dffs_only(fw.soc(), base.candidate_centers);
  std::printf("spot centers: %zu combinational, %zu sequential\n",
              comb_attack.candidate_centers.size(),
              reg_attack.candidate_centers.size());

  // ---- (a) outcome mix for comb-gate attacks (random sampling of f) ------
  {
    auto sampler = fw.make_random_sampler(comb_attack);
    Rng rng(31);
    const auto res = fw.evaluator().run(*sampler, rng, 6000);
    const double n = static_cast<double>(res.stats.count());
    bench::section("(a) outcome mix, combinational-gate attacks");
    std::printf("masked            : %5.1f%%   (paper: 68.3%%)\n",
                100.0 * static_cast<double>(res.masked) / n);
    std::printf("memory-type only  : %5.1f%%   (paper: 28.6%%)\n",
                100.0 * static_cast<double>(res.analytical) / n);
    std::printf("needs RTL resume  : %5.1f%%   (paper:  3.1%%)\n",
                100.0 * static_cast<double>(res.rtl) / n);
  }

  // ---- (b) SSF comparison -------------------------------------------------
  bench::section("(b) SSF by attacked cell kind (importance sampling, n=2000)");
  std::printf("%-14s %8s %10s %10s\n", "targets", "succ", "SSF", "stderr");
  double ssf_reg = 0, ssf_comb = 0;
  {
    auto sampler = fw.make_importance_sampler(reg_attack);
    Rng rng(32);
    const auto res = fw.evaluator().run(*sampler, rng, 2000);
    ssf_reg = res.ssf();
    std::printf("%-14s %8zu %10.5f %10.5f\n", "registers", res.successes,
                res.ssf(), res.stats.standard_error());
  }
  {
    auto sampler = fw.make_importance_sampler(comb_attack);
    Rng rng(33);
    const auto res = fw.evaluator().run(*sampler, rng, 2000);
    ssf_comb = res.ssf();
    std::printf("%-14s %8zu %10.5f %10.5f\n", "comb gates", res.successes,
                res.ssf(), res.stats.standard_error());
  }
  if (ssf_reg > 0) {
    std::printf(
        "\ncomb-gate SSF is %.1f%% of register SSF (paper: 25.8%%) — both\n"
        "register cells and the gates in their fanin cones need protection.\n",
        100.0 * ssf_comb / ssf_reg);
  }
  return 0;
}
