// Reproduces paper Fig. 7: bit-error patterns produced by the gate-level
// fault-injection-cycle simulation.
//   (a) error distribution across unmasked injections: single-bit /
//       single-byte / multi-byte (paper: 58.6% / 26.9% / 14.5%) — evidence
//       against the classic single-bit/single-byte fault assumption.
//   (b) number of distinct error patterns induced by attacking combinational
//       gates vs sequential elements (paper: comb 91.0%, common 6.1%,
//       seq 2.9% — comb attacks generate far richer error behaviour).
#include <set>

#include "bench_util.h"
#include "soc/benchmark.h"

using namespace fav;

int main() {
  bench::banner("Fig. 7 — gate-level bit-error patterns");

  const soc::SecurityBenchmark bench_def = soc::make_illegal_write_benchmark();
  const soc::SocNetlist soc;
  const layout::Placement placement(soc.netlist());
  const faultsim::InjectionSimulator injector(soc.netlist());
  const rtl::GoldenRun golden(bench_def.program, bench_def.max_cycles, 32);
  const double period = injector.timing().clock_period();

  // ---- (a) error size classes over radiated-spot injections -------------
  std::size_t single_bit = 0, single_byte = 0, multi_byte = 0, masked = 0;
  Rng rng(1701);
  const auto& cells = placement.placed_nodes();
  constexpr int kInjections = 12000;
  for (int i = 0; i < kInjections; ++i) {
    const std::uint64_t te = 40 + rng.uniform_below(golden.length() - 45);
    rtl::Machine m = golden.restore(te);
    soc::GateLevelMachine gate(soc, bench_def.program);
    gate.load_state(m.state());
    gate.mutable_ram() = m.ram();
    gate.settle_inputs();
    const auto center = cells[rng.uniform_below(cells.size())];
    const auto struck = placement.nodes_within(center, 1.5);
    const auto res =
        injector.inject(gate.sim(), struck, rng.uniform01() * period);
    if (res.masked()) {
      ++masked;
      continue;
    }
    std::set<int> bytes;
    for (const auto dff : res.flipped_dffs) {
      bytes.insert(soc.flat_bit_for_dff(dff) / 8);
    }
    if (res.flipped_dffs.size() == 1) {
      ++single_bit;
    } else if (bytes.size() == 1) {
      ++single_byte;
    } else {
      ++multi_byte;
    }
  }
  const double unmasked =
      static_cast<double>(single_bit + single_byte + multi_byte);
  bench::section("(a) error distribution over unmasked injections");
  std::printf("injections: %d (masked: %zu)\n", kInjections, masked);
  std::printf("single bit : %5.1f%%   (paper: 58.6%%)\n",
              100.0 * single_bit / unmasked);
  std::printf("single byte: %5.1f%%   (paper: 26.9%%)\n",
              100.0 * single_byte / unmasked);
  std::printf("multi byte : %5.1f%%   (paper: 14.5%%)\n",
              100.0 * multi_byte / unmasked);

  // ---- (b) pattern diversity: combinational vs sequential targets --------
  // Each radiated spot is split by mechanism: the transients seeded at the
  // covered combinational gates vs the direct upsets of the covered register
  // cells. The distinct flip-sets each mechanism can produce are the "error
  // patterns" of the paper's comparison.
  std::set<std::vector<int>> comb_patterns, seq_patterns;
  const std::vector<std::uint64_t> cycles = {45, 60, 75, 90, 105};
  const std::vector<double> fracs = {0.35, 0.55, 0.75, 0.90, 0.98};
  for (const std::uint64_t te : cycles) {
    rtl::Machine m = golden.restore(te);
    soc::GateLevelMachine gate(soc, bench_def.program);
    gate.load_state(m.state());
    gate.mutable_ram() = m.ram();
    gate.settle_inputs();
    for (std::size_t ci = 0; ci < cells.size(); ci += 2) {
      const auto struck = placement.nodes_within(cells[ci], 1.5);
      std::vector<netlist::NodeId> comb_struck, seq_struck;
      for (const auto g : struck) {
        (soc.netlist().is_dff(g) ? seq_struck : comb_struck).push_back(g);
      }
      if (!seq_struck.empty()) {
        const auto res = injector.inject(gate.sim(), seq_struck, 0.0);
        if (!res.masked()) {
          std::vector<int> pattern;
          for (const auto dff : res.flipped_dffs) {
            pattern.push_back(soc.flat_bit_for_dff(dff));
          }
          seq_patterns.insert(pattern);
        }
      }
      if (comb_struck.empty()) continue;
      for (const double frac : fracs) {
        const auto res =
            injector.inject(gate.sim(), comb_struck, frac * period);
        if (res.masked()) continue;
        std::vector<int> pattern;
        for (const auto dff : res.flipped_dffs) {
          pattern.push_back(soc.flat_bit_for_dff(dff));
        }
        comb_patterns.insert(pattern);
      }
    }
  }
  std::set<std::vector<int>> common;
  for (const auto& p : comb_patterns) {
    if (seq_patterns.count(p)) common.insert(p);
  }
  const double total = static_cast<double>(comb_patterns.size() +
                                           seq_patterns.size() -
                                           common.size());
  bench::section("(b) distinct error patterns by attacked cell kind");
  std::printf("comb-gate attacks : %5zu patterns (%5.1f%%; paper: 91.0%%)\n",
              comb_patterns.size() - common.size(),
              100.0 * (comb_patterns.size() - common.size()) / total);
  std::printf("common            : %5zu patterns (%5.1f%%; paper:  6.1%%)\n",
              common.size(), 100.0 * common.size() / total);
  std::printf("register attacks  : %5zu patterns (%5.1f%%; paper:  2.9%%)\n",
              seq_patterns.size() - common.size(),
              100.0 * (seq_patterns.size() - common.size()) / total);
  std::printf(
      "\ntakeaway: restricting fault models to sequential cells misses the\n"
      "bulk of realizable error patterns, matching the paper's argument for\n"
      "gate-level modeling.\n");
  return 0;
}
