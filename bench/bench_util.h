// Shared helpers for the experiment-reproduction benches (one binary per
// paper table/figure; see DESIGN.md §4 and EXPERIMENTS.md).
#pragma once

#include <cstdio>
#include <string>
#include <vector>

#include "core/framework.h"
#include "core/hardening.h"

namespace fav::bench {

inline void banner(const std::string& title) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("================================================================\n");
}

inline void section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

/// Candidate subsets by cell kind, for register-vs-combinational attacks.
inline std::vector<netlist::NodeId> gates_only(
    const soc::SocNetlist& soc, const std::vector<netlist::NodeId>& cells) {
  std::vector<netlist::NodeId> out;
  for (const auto id : cells) {
    if (soc.netlist().is_comb_gate(id)) out.push_back(id);
  }
  return out;
}

inline std::vector<netlist::NodeId> dffs_only(
    const soc::SocNetlist& soc, const std::vector<netlist::NodeId>& cells) {
  std::vector<netlist::NodeId> out;
  for (const auto id : cells) {
    if (soc.netlist().is_dff(id)) out.push_back(id);
  }
  return out;
}

}  // namespace fav::bench
