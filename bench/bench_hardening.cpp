// Reproduces the paper's Section 6 headline results on design optimization:
//   * ~3% of registers contribute >95% of the SSF,
//   * hardening them (10x resilience at 3x cell area, per [19, 20]) reduces
//     SSF by up to 6.5x at <2% area overhead.
#include "bench_util.h"

using namespace fav;

int main() {
  bench::banner("Section 6 headline — critical registers & hardening");

  core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  const auto attack = fw.subblock_attack_model(1.5, 50);
  auto sampler = fw.make_importance_sampler(attack);
  Rng rng(65);
  const mc::SsfResult baseline = fw.evaluator().run(*sampler, rng, 8000);
  std::printf("baseline SSF = %.5f (stderr %.5f, %zu successes)\n",
              baseline.ssf(), baseline.stats.standard_error(),
              baseline.successes);

  const auto& map = rtl::Machine::reg_map();
  const auto critical = core::select_critical_bits(baseline, 0.95);
  const double frac = static_cast<double>(critical.size()) /
                      static_cast<double>(map.total_bits());

  bench::section("critical-register concentration");
  std::printf(
      "%zu of %d register cells (%.1f%%) contribute %.1f%% of the SSF\n"
      "(paper: 3%% of registers -> >95%% of SSF)\n",
      critical.size(), map.total_bits(), 100.0 * frac,
      100.0 * core::attribution_coverage_bits(baseline, critical));
  std::printf("\ncritical cells:\n");
  for (const int bit : critical) {
    const auto [fi, b] = map.locate(bit);
    std::printf("  %s[%d]  (%.1f%% of SSF)\n", map.field(fi).name.c_str(), b,
                100.0 * baseline.bit_contribution.at(bit) /
                    (baseline.ssf() *
                     static_cast<double>(baseline.stats.count())));
  }

  bench::section("hardening the critical cells (10x resilience, 3x area)");
  Rng hrng(66);
  const core::HardeningReport report = core::evaluate_hardening(
      fw.evaluator(), fw.soc(), baseline, critical, {}, hrng);
  std::printf("hardened SSF    : %.5f\n", report.hardened_ssf);
  std::printf("SSF improvement : %.1fx      (paper: up to 6.5x)\n",
              report.improvement());
  std::printf("area overhead   : %.2f%%    (paper: < 2%%)\n",
              100.0 * report.area_overhead);
  std::printf("cells hardened  : %zu of %zu (%.1f%%)\n",
              report.protected_bits.size(), report.total_register_bits,
              100.0 * report.protected_register_fraction());

  bench::section("protection-budget sweep");
  std::printf("%-10s %8s %12s %12s %12s\n", "coverage", "cells", "SSF",
              "improvement", "area ovh");
  for (const double coverage : {0.25, 0.50, 0.75, 0.90, 0.95, 0.99, 1.00}) {
    const auto cells = core::select_critical_bits(baseline, coverage);
    Rng r2(67);
    const auto rep = core::evaluate_hardening(fw.evaluator(), fw.soc(),
                                              baseline, cells, {}, r2);
    std::printf("%9.0f%% %8zu %12.5f %11.1fx %11.2f%%\n", coverage * 100,
                cells.size(), rep.hardened_ssf, rep.improvement(),
                100.0 * rep.area_overhead);
  }
  return 0;
}
