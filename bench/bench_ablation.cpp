// Ablation study of the framework's own design choices (DESIGN.md §6):
//   * analytical evaluation of memory-type registers ON vs OFF,
//   * sampling-weight parameters alpha / memory boost / potency / defensive
//     mixture,
//   * golden-checkpoint spacing vs per-sample warm-up cost.
#include <chrono>

#include "bench_util.h"

using namespace fav;

namespace {

double run_variance(core::FaultAttackEvaluator& fw,
                    const faultsim::AttackModel& attack,
                    const precharac::SamplingParams& params, std::size_t n,
                    double* ssf_out) {
  precharac::SamplingModel model(fw.soc(), fw.placement(), fw.cone(),
                                 fw.signatures(), fw.characterization(),
                                 attack, params);
  mc::ImportanceSampler sampler(model);
  Rng rng(8080);
  const auto res = fw.evaluator().run(sampler, rng, n);
  if (ssf_out != nullptr) *ssf_out = res.ssf();
  return res.sample_variance();
}

}  // namespace

int main() {
  bench::banner("Ablations — framework design choices");

  core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  const auto attack_base = fw.subblock_attack_model(1.5, 50);
  // make_* stores copies; keep one canonical attack with stable storage.
  constexpr std::size_t kSamples = 3000;

  // ---- analytical path on/off --------------------------------------------
  bench::section("analytical evaluation of memory-type errors (on vs off)");
  {
    auto sampler_on = fw.make_importance_sampler(attack_base);
    Rng rng(1);
    const auto t0 = std::chrono::steady_clock::now();
    const auto on = fw.evaluator().run(*sampler_on, rng, kSamples);
    const auto t1 = std::chrono::steady_clock::now();

    mc::EvaluatorConfig cfg;
    cfg.use_analytical = false;
    mc::SsfEvaluator rtl_only(fw.soc(), fw.placement(), fw.injector(),
                              fw.benchmark(), fw.golden(),
                              &fw.characterization(), cfg);
    auto sampler_off = fw.make_importance_sampler(attack_base);
    Rng rng2(1);
    const auto t2 = std::chrono::steady_clock::now();
    const auto off = rtl_only.run(*sampler_off, rng2, kSamples);
    const auto t3 = std::chrono::steady_clock::now();

    const double ms_on =
        std::chrono::duration<double, std::milli>(t1 - t0).count();
    const double ms_off =
        std::chrono::duration<double, std::milli>(t3 - t2).count();
    std::printf("%-12s %10s %12s %12s %12s\n", "analytical", "SSF",
                "variance", "time (ms)", "rtl resumes");
    std::printf("%-12s %10.5f %12.3e %12.0f %12zu\n", "on", on.ssf(),
                on.sample_variance(), ms_on, on.rtl);
    std::printf("%-12s %10.5f %12.3e %12.0f %12zu\n", "off", off.ssf(),
                off.sample_variance(), ms_off, off.rtl);
    std::printf("same estimate, %0.1fx fewer RTL resumptions with the "
                "analytical path\n",
                off.rtl > 0 ? static_cast<double>(off.rtl) /
                                  std::max<std::size_t>(on.rtl, 1)
                            : 0.0);
  }

  // ---- sampling parameter sweeps -----------------------------------------
  // Base parameters include the analytically-enumerated per-spot boosts —
  // the sweeps perturb one knob at a time from the shipped configuration.
  const precharac::SamplingParams tuned = fw.sampling_params_for(attack_base);
  bench::section("alpha (correlation emphasis) sweep");
  std::printf("%-10s %12s %12s\n", "alpha", "SSF", "variance");
  for (const double alpha : {0.0, 2.0, 4.0, 8.0}) {
    precharac::SamplingParams p = tuned;
    p.alpha = alpha;
    double ssf = 0;
    const double var = run_variance(fw, attack_base, p, kSamples, &ssf);
    std::printf("%-10.1f %12.5f %12.3e\n", alpha, ssf, var);
  }

  bench::section("memory boost (gamma) sweep");
  std::printf("%-10s %12s %12s\n", "gamma", "SSF", "variance");
  for (const double gamma : {0.0, 0.5, 1.0, 5.0, 50.0}) {
    precharac::SamplingParams p = tuned;
    p.memory_boost = gamma;
    double ssf = 0;
    const double var = run_variance(fw, attack_base, p, kSamples, &ssf);
    std::printf("%-10.1f %12.5f %12.3e\n", gamma, ssf, var);
  }

  bench::section("analytical potency steering (on vs off)");
  std::printf("%-10s %12s %12s\n", "potency", "SSF", "variance");
  for (const bool on : {true, false}) {
    precharac::SamplingParams p = tuned;
    if (!on) p.memory_bit_potency.clear();
    double ssf = 0;
    const double var = run_variance(fw, attack_base, p, kSamples, &ssf);
    std::printf("%-10s %12.5f %12.3e\n", on ? "on" : "off", ssf, var);
  }

  bench::section("defensive mixture (epsilon) sweep");
  std::printf("%-10s %12s %12s\n", "epsilon", "SSF", "variance");
  for (const double eps : {0.02, 0.1, 0.2, 0.5, 1.0}) {
    precharac::SamplingParams p = tuned;
    p.defensive_mix = eps;
    double ssf = 0;
    const double var = run_variance(fw, attack_base, p, kSamples, &ssf);
    std::printf("%-10.2f %12.5f %12.3e\n", eps, ssf, var);
  }

  // ---- checkpoint spacing ------------------------------------------------
  bench::section("golden-checkpoint spacing vs warm-up cost");
  std::printf("%-10s %14s %14s\n", "interval", "avg warm-up", "checkpoints");
  for (const std::uint64_t interval : {1ull, 8ull, 32ull, 128ull}) {
    rtl::GoldenRun golden(fw.benchmark().program, fw.benchmark().max_cycles,
                          interval);
    RunningStats warmup;
    for (std::uint64_t c = 0; c < golden.length(); c += 3) {
      std::uint64_t w = 0;
      golden.restore(c, &w);
      warmup.add(static_cast<double>(w));
    }
    std::printf("%-10llu %14.1f %14zu\n",
                static_cast<unsigned long long>(interval), warmup.mean(),
                golden.checkpoints().size());
  }
  return 0;
}
