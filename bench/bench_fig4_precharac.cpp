// Reproduces paper Fig. 4: distribution of the register characterization
// parameters — (a) error lifetime and (b) error contamination number — for
// every sequential cell of the evaluated processor.
//
// Paper shape to match: more than half of the registers sit at the long-
// lifetime cap with ~0 contamination (the memory-type class), while the
// rest (datapath/control state) have short lifetimes and a contamination
// tail.
#include "bench_util.h"
#include "soc/benchmark.h"
#include "util/stats.h"

using namespace fav;

int main() {
  bench::banner(
      "Fig. 4 — error lifetime & contamination distributions "
      "(pre-characterization)");

  const rtl::Program workload = soc::make_synthetic_workload();
  const rtl::GoldenRun golden(workload, 400, 32);
  precharac::CharacterizationConfig cfg;
  cfg.stride = 7;  // dense injection sweep for smooth histograms
  const precharac::RegisterCharacterization charac(golden, cfg);
  const auto& map = rtl::Machine::reg_map();

  Histogram lifetime_hist(0.0, static_cast<double>(cfg.horizon) + 1.0, 21);
  Histogram contamination_hist(0.0, 21.0, 21);
  for (int bit = 0; bit < map.total_bits(); ++bit) {
    const auto& bc = charac.bit(bit);
    lifetime_hist.add(bc.avg_lifetime);
    contamination_hist.add(std::min(bc.avg_contamination, 20.0));
  }

  bench::section("(a) error lifetime distribution (fraction of registers)");
  std::printf("%-16s %10s\n", "lifetime bin", "fraction");
  for (std::size_t i = 0; i < lifetime_hist.bin_count(); ++i) {
    if (lifetime_hist.bin_weight(i) == 0) continue;
    std::printf("[%5.0f, %5.0f) %9.3f\n", lifetime_hist.bin_lo(i),
                lifetime_hist.bin_hi(i), lifetime_hist.bin_fraction(i));
  }

  bench::section("(b) error contamination number (fraction of registers)");
  std::printf("%-16s %10s\n", "contamination", "fraction");
  for (std::size_t i = 0; i < contamination_hist.bin_count(); ++i) {
    if (contamination_hist.bin_weight(i) == 0) continue;
    std::printf("[%5.0f, %5.0f) %9.3f\n", contamination_hist.bin_lo(i),
                contamination_hist.bin_hi(i),
                contamination_hist.bin_fraction(i));
  }

  const auto memory_bits = charac.memory_type_bits();
  const double frac = static_cast<double>(memory_bits.size()) /
                      static_cast<double>(map.total_bits());
  bench::section("classification (paper: >1/2 of registers are memory-type)");
  std::printf("memory-type registers: %zu / %d (%.1f%%)\n", memory_bits.size(),
              map.total_bits(), 100.0 * frac);

  std::printf("\nper-field summary:\n%-14s %10s %14s %12s\n", "field",
              "lifetime", "contamination", "class");
  for (std::size_t fi = 0; fi < map.fields().size(); ++fi) {
    const auto& f = map.fields()[fi];
    RunningStats lt, ct;
    int mem = 0;
    for (int b = 0; b < f.width; ++b) {
      lt.add(charac.bit(f.offset + b).avg_lifetime);
      ct.add(charac.bit(f.offset + b).avg_contamination);
      mem += charac.is_memory_type(f.offset + b) ? 1 : 0;
    }
    std::printf("%-14s %10.1f %14.2f %9d/%d\n", f.name.c_str(), lt.mean(),
                ct.mean(), mem, f.width);
  }
  return 0;
}
