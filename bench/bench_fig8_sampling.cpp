// Reproduces paper Fig. 8: effectiveness of the importance-sampling
// pre-characterization.
//   (a) the sampling distribution g_T over the timing distance t,
//   (b) sample-space reduction: per unrolled frame, the number of registers
//       in the responding signal's fanin cone, and the computation-type
//       subset that actually needs sampling, both normalized to the total
//       register count.
#include "bench_util.h"

using namespace fav;

int main() {
  bench::banner("Fig. 8 — importance-sampling distribution & sample space");

  core::FaultAttackEvaluator fw(soc::make_illegal_write_benchmark());
  const auto attack = fw.subblock_attack_model(1.5, 50);
  const precharac::SamplingModel model = fw.make_sampling_model(attack);

  bench::section("(a) sampling distribution g_T over timing distance t");
  std::printf("%-6s %12s\n", "t", "g_T(t)");
  for (int t = attack.t_min; t <= attack.t_max; ++t) {
    std::printf("%-6d %12.5f\n", t,
                model.g_t().pmf(static_cast<std::size_t>(t - attack.t_min)));
  }

  bench::section("(b) sample-space reduction per unrolled frame");
  const auto& cone = fw.cone();
  const auto& charac = fw.characterization();
  const double total =
      static_cast<double>(fw.soc().netlist().dffs().size());
  std::printf("%-6s %10s %14s %19s\n", "frame", "total reg", "fanin-cone reg",
              "fanin-cone comp reg");
  for (int frame = 0; frame <= 20; ++frame) {
    const auto& regs = cone.frame(frame).registers;
    int comp = 0;
    for (const auto dff : regs) {
      if (!charac.is_memory_type(fw.soc().flat_bit_for_dff(dff))) ++comp;
    }
    std::printf("%-6d %10.3f %14.3f %19.3f\n", frame, 1.0,
                static_cast<double>(regs.size()) / total,
                static_cast<double>(comp) / total);
  }
  std::printf(
      "\ntakeaway: the cone restriction plus the memory-type/computation-type\n"
      "split shrinks the per-frame sample space well below the full register\n"
      "file, as in the paper's Fig. 8(b).\n");
  return 0;
}
